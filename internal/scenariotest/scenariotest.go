// Package scenariotest is the cross-solver metamorphic harness: it
// fans scenario-family instances (internal/scenario) across the
// registered tap, beacon and sampling solvers via engine.Map and
// asserts invariants every correct solver stack must satisfy on every
// input, not just the paper's two figure-suite sizes:
//
//  1. lp-bounds-ilp — the LP relaxation of Linear program 2 bounds the
//     ILP optimum from below (⌈LP⌉ ≤ ILP devices).
//  2. greedy-never-beats-exact — heuristics (tap greedy, beacon greedy
//     and Thiran) never use fewer devices than a proven-optimal exact
//     solve of the same instance.
//  3. budget-monotone — tap/max-coverage's monitored volume is
//     non-decreasing in the device budget.
//  4. postsolve-feasible — every solver's solution is feasible on the
//     ORIGINAL instance (coverage ≥ k·V for tap solvers, every probe
//     beacon-covered for beacon solvers, per-traffic floors for
//     sampling): MIP presolve/postsolve must hand back full-length
//     untruncated solutions.
//  5. simulate-confirms-promise — replaying the sampling placement at
//     packet level in marked mode achieves the promised Σ δ_p·v_p
//     coverage within sampling tolerance.
//  6. resolve-equals-cold — session re-optimization (repro.Session)
//     over a churn chain answers byte-identically to cold solves of
//     the same mutated instances, for every registered solver: warm
//     artifacts change effort, never answers (see session.go for the
//     capped-search carve-out).
//
// The harness is ordinary (non-test) code so future CLIs or CI jobs can
// run it against out-of-tree solvers; scenariotest's own tests wire it
// to the built-in families and registry.
package scenariotest

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/passive"
	"repro/internal/scenario"
	"repro/internal/simulate"
)

// Case is one scenario instance under test.
type Case struct {
	Family string
	Size   int
	Seed   int64
	// K is the coverage target handed to the solvers.
	K float64
	// In is the single-routed instance; Multi the multi-routed (§5)
	// view of the same demands.
	In    *core.Instance
	Multi *core.MultiInstance

	// memo single-flights the sub-solves several invariants share
	// (tap/ilp, sample/ppme, the probe set, beacon/ilp), so the
	// exact-solver cost is paid once per case even though invariants
	// run as independent engine tasks. Results are shared: read-only.
	memo *caseMemo
}

// caseMemo is a keyed single-flight: the first caller of a key runs
// the computation, concurrent and later callers share the outcome.
type caseMemo struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	v    any
	err  error
}

func (m *caseMemo) do(key string, compute func() (any, error)) (any, error) {
	m.mu.Lock()
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.v, e.err = compute() })
	return e.v, e.err
}

// solve is repro.Solve memoized under the case's solver-name key; all
// call sites of a given solver within the invariant catalog use one
// fixed option set (WithCoverage(c.K)), so the name alone is a sound
// key. Budget sweeps bypass it (every budget is solved once anyway).
func (c Case) solve(ctx context.Context, solver string, problem repro.Problem) (*repro.Result, error) {
	v, err := c.memo.do(solver, func() (any, error) {
		return repro.Solve(ctx, solver, problem, repro.WithCoverage(c.K))
	})
	if err != nil {
		return nil, err
	}
	return v.(*repro.Result), nil
}

func (c Case) String() string {
	return fmt.Sprintf("%s/size=%d/seed=%d/k=%g", c.Family, c.Size, c.Seed, c.K)
}

// BuildCases draws one Case per (family, size, seed) triple.
func BuildCases(families []string, sizes []int, seeds []int64, k float64) ([]Case, error) {
	var out []Case
	for _, fam := range families {
		for _, size := range sizes {
			for _, seed := range seeds {
				s, err := scenario.Generate(fam, size, seed)
				if err != nil {
					return nil, err
				}
				in, err := s.Instance()
				if err != nil {
					return nil, fmt.Errorf("%s(size=%d, seed=%d): %w", fam, size, seed, err)
				}
				mi, err := s.MultiInstance(2)
				if err != nil {
					return nil, fmt.Errorf("%s(size=%d, seed=%d): %w", fam, size, seed, err)
				}
				out = append(out, Case{
					Family: fam, Size: size, Seed: seed, K: k, In: in, Multi: mi,
					memo: &caseMemo{m: make(map[string]*memoEntry)},
				})
			}
		}
	}
	return out, nil
}

// Invariant is one named metamorphic property of the solver stack.
type Invariant struct {
	Name  string
	Check func(ctx context.Context, c Case) error
}

// Failure reports one invariant violation on one case.
type Failure struct {
	Case      Case
	Invariant string
	Err       error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: %s: %v", f.Case, f.Invariant, f.Err)
}

// Run fans every (case, invariant) cell across the runner's worker
// pool and returns all violations, ordered by case then invariant —
// deterministic regardless of worker count (engine.Map returns results
// in task-index order).
func Run(ctx context.Context, eng *engine.Runner, cases []Case, invs []Invariant) ([]Failure, error) {
	n := len(cases) * len(invs)
	errs, err := engine.Map(ctx, eng, n, func(ctx context.Context, i int) (error, error) {
		c := cases[i/len(invs)]
		inv := invs[i%len(invs)]
		return inv.Check(ctx, c), nil
	})
	if err != nil {
		return nil, err
	}
	var out []Failure
	for i, e := range errs {
		if e != nil {
			out = append(out, Failure{Case: cases[i/len(invs)], Invariant: invs[i%len(invs)].Name, Err: e})
		}
	}
	return out, nil
}

// Invariants returns the six-entry invariant catalog (see the package
// comment; DESIGN.md lists the same catalog).
func Invariants() []Invariant {
	return []Invariant{
		{Name: "lp-bounds-ilp", Check: checkLPBoundsILP},
		{Name: "greedy-never-beats-exact", Check: checkGreedyNeverBeatsExact},
		{Name: "budget-monotone", Check: checkBudgetMonotone},
		{Name: "postsolve-feasible", Check: checkPostsolveFeasible},
		{Name: "simulate-confirms-promise", Check: checkSimulateConfirmsPromise},
		{Name: "resolve-equals-cold", Check: checkResolveEqualsCold},
	}
}

const tol = 1e-6

// checkLPBoundsILP: LP relaxation ≤ ILP optimum, and since the device
// count is integral, ⌈LP − ε⌉ ≤ ILP too. The ILP's own reported Bound
// must also sit below its objective.
func checkLPBoundsILP(ctx context.Context, c Case) error {
	lpOpt, err := passive.LinearRelaxation(ctx, c.In, c.K)
	if err != nil {
		return err
	}
	res, err := c.solve(ctx, repro.SolverTapILP, c.In)
	if err != nil {
		return err
	}
	if !res.Optimal {
		return fmt.Errorf("ILP did not prove optimality (nodes %d)", res.Stats.Nodes)
	}
	if lpOpt > res.Objective+tol {
		return fmt.Errorf("LP relaxation %g exceeds ILP optimum %g", lpOpt, res.Objective)
	}
	if ceil := math.Ceil(lpOpt - tol); ceil > res.Objective+tol {
		return fmt.Errorf("⌈LP⌉ = %g exceeds ILP optimum %g", ceil, res.Objective)
	}
	if res.Bound > res.Objective+tol {
		return fmt.Errorf("ILP bound %g exceeds its objective %g", res.Bound, res.Objective)
	}
	return nil
}

// checkGreedyNeverBeatsExact: on the tap side greedy-gain, greedy-load
// and flow-heuristic must not beat a proven-optimal exact solve; on
// the beacon side greedy and Thiran must not beat the beacon ILP.
func checkGreedyNeverBeatsExact(ctx context.Context, c Case) error {
	exact, err := c.solve(ctx, repro.SolverTapILP, c.In)
	if err != nil {
		return err
	}
	if !exact.Optimal {
		return fmt.Errorf("tap/ilp did not prove optimality")
	}
	for _, h := range []string{repro.SolverTapGreedyGain, repro.SolverTapGreedyLoad, repro.SolverTapFlow} {
		res, err := c.solve(ctx, h, c.In)
		if err != nil {
			return fmt.Errorf("%s: %w", h, err)
		}
		if res.Objective < exact.Objective-tol {
			return fmt.Errorf("%s uses %g devices, beating exact optimum %g", h, res.Objective, exact.Objective)
		}
	}

	ps, err := c.probes()
	if err != nil {
		return err
	}
	ilp, err := c.solve(ctx, repro.SolverBeaconILP, ps)
	if err != nil {
		return err
	}
	if !ilp.Optimal {
		return fmt.Errorf("beacon/ilp did not prove optimality")
	}
	for _, h := range []string{repro.SolverBeaconGreedy, repro.SolverBeaconThiran} {
		res, err := c.solve(ctx, h, ps)
		if err != nil {
			return fmt.Errorf("%s: %w", h, err)
		}
		if res.Objective < ilp.Objective-tol {
			return fmt.Errorf("%s places %g beacons, beating exact optimum %g", h, res.Objective, ilp.Objective)
		}
	}
	return nil
}

// checkBudgetMonotone: tap/max-coverage's monitored volume must be
// non-decreasing in the device budget, and must reach the instance
// total once the budget admits every edge.
func checkBudgetMonotone(ctx context.Context, c Case) error {
	prev := 0.0
	for budget := 1; budget <= 4; budget++ {
		res, err := repro.Solve(ctx, repro.SolverTapMaxCover, c.In, repro.WithBudget(budget))
		if err != nil {
			return err
		}
		if res.Objective < prev-tol {
			return fmt.Errorf("budget %d covers %g < budget %d's %g", budget, res.Objective, budget-1, prev)
		}
		if res.Objective > c.In.TotalVolume()+tol {
			return fmt.Errorf("budget %d covers %g, more than the instance total %g", budget, res.Objective, c.In.TotalVolume())
		}
		prev = res.Objective
	}
	// With every edge admitted, everything is monitored: each traffic
	// crosses at least one link.
	full, err := repro.Solve(ctx, repro.SolverTapMaxCover, c.In, repro.WithBudget(c.In.G.NumEdges()))
	if err != nil {
		return err
	}
	if total := c.In.TotalVolume(); math.Abs(full.Objective-total) > tol*(1+total) {
		return fmt.Errorf("budget %d (all edges) covers %g, want the instance total %g", c.In.G.NumEdges(), full.Objective, total)
	}
	return nil
}

// checkPostsolveFeasible: every solver's solution, mapped back onto
// the ORIGINAL instance, must satisfy the constraints the solver
// promised — the postsolve/translation layers (MIP presolve, cover
// reductions, LP column bookkeeping) may never leak a truncated or
// infeasible solution.
func checkPostsolveFeasible(ctx context.Context, c Case) error {
	for _, name := range []string{
		repro.SolverTapGreedyGain, repro.SolverTapGreedyLoad, repro.SolverTapFlow,
		repro.SolverTapILP, repro.SolverTapExact, repro.SolverTapPortfolio,
	} {
		res, err := c.solve(ctx, name, c.In)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		pl := res.Taps
		for _, e := range pl.Edges {
			if e < 0 || int(e) >= c.In.G.NumEdges() {
				return fmt.Errorf("%s placed a device on nonexistent edge %d", name, e)
			}
		}
		vol, frac := passive.Coverage(c.In, pl.Edges)
		if frac < c.K-1e-9 {
			return fmt.Errorf("%s covers fraction %g < k = %g", name, frac, c.K)
		}
		if math.Abs(vol-pl.Covered) > 1e-6*(1+math.Abs(vol)) {
			return fmt.Errorf("%s reports covered %g, recomputation gives %g", name, pl.Covered, vol)
		}
	}

	// Sampling: the PPME MILP's δ floors must hold on the original
	// multi-routed instance.
	sol, err := c.solve(ctx, repro.SolverSamplePPME, c.Multi)
	if err != nil {
		return err
	}
	sp := sol.Sampling
	for e, r := range sp.Rates {
		if e < 0 || int(e) >= c.Multi.G.NumEdges() || r < -tol || r > 1+tol {
			return fmt.Errorf("sample/ppme rate[%d] = %g invalid", e, r)
		}
	}
	if promised := simulate.PromisedFraction(c.Multi, sp.Rates); promised < c.K-1e-6 {
		return fmt.Errorf("sample/ppme rates promise coverage %g < k = %g", promised, c.K)
	}

	// Beacons: every probe must have a beacon extremity.
	ps, err := c.probes()
	if err != nil {
		return err
	}
	for _, name := range []string{repro.SolverBeaconThiran, repro.SolverBeaconGreedy, repro.SolverBeaconILP} {
		res, err := c.solve(ctx, name, ps)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		chosen := make(map[graph.NodeID]bool, len(res.Beacons.Beacons))
		for _, b := range res.Beacons.Beacons {
			chosen[b] = true
		}
		for _, p := range ps.Probes {
			if !chosen[p.U] && !chosen[p.V] {
				return fmt.Errorf("%s leaves probe %d–%d without a beacon extremity", name, p.U, p.V)
			}
		}
	}
	return nil
}

// checkSimulateConfirmsPromise: replaying the PPME placement at packet
// level under the Marked discipline must achieve the promised
// Σ δ_p·v_p coverage within sampling tolerance; the analytic
// PromisedFraction and the solver's own Fraction must agree exactly.
func checkSimulateConfirmsPromise(ctx context.Context, c Case) error {
	sol, err := c.solve(ctx, repro.SolverSamplePPME, c.Multi)
	if err != nil {
		return err
	}
	sp := sol.Sampling
	promised := simulate.PromisedFraction(c.Multi, sp.Rates)
	if math.Abs(promised-sp.Fraction) > 1e-6 {
		return fmt.Errorf("solver reports fraction %g, analytic promise is %g", sp.Fraction, promised)
	}
	rep, err := simulate.Run(c.Multi, sp.Rates, simulate.Options{
		Discipline:     simulate.Marked,
		PacketsPerUnit: 60,
		Seed:           c.Seed + 17,
	})
	if err != nil {
		return err
	}
	// Sampling noise: the replay draws one uniform per packet, so the
	// achieved fraction concentrates around the promise at
	// O(1/√packets); 5σ with σ ≤ 1/(2√n) plus discretization slack.
	slack := 5/(2*math.Sqrt(float64(rep.TotalPackets))) + 0.02
	if math.Abs(rep.Fraction-promised) > slack {
		return fmt.Errorf("marked replay achieves %g, promise %g (slack %g, %d packets)",
			rep.Fraction, promised, slack, rep.TotalPackets)
	}
	return nil
}

// probes computes (once per case) the probe set of the POP graph with
// every node as candidate beacon (the §6.1 first phase).
func (c Case) probes() (repro.ProbeSet, error) {
	v, err := c.memo.do("probes", func() (any, error) {
		n := c.In.G.NumNodes()
		candidates := make([]graph.NodeID, 0, n)
		for nd := 0; nd < n; nd++ {
			candidates = append(candidates, graph.NodeID(nd))
		}
		return repro.ComputeProbes(c.In.G, candidates)
	})
	if err != nil {
		return repro.ProbeSet{}, err
	}
	return v.(repro.ProbeSet), nil
}
