package scenariotest

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
)

// harnessMatrix is the short-mode metamorphic matrix: every registered
// family (6 ≥ the acceptance floor of 5) at two capped sizes, two
// seeds each, against all six invariants — the registered tap (9
// solvers), beacon (3) and sampling (2) entries all participate via
// the invariant bodies. Long mode widens sizes and seeds.
func harnessMatrix(t *testing.T) ([]Case, []Invariant) {
	t.Helper()
	// The "pop"/"churn" families carry the paper's full endpoint
	// density (size 10 ≈ the paper's Figure 7 instance, 132+ traffics),
	// and some seeds above that size draw pathological PPME MILPs
	// (minutes per solve), so they stay capped at 10; the other
	// families use ~half the endpoint density and stretch further.
	heavy, light := []int{8, 10}, []int{8, 10}
	seeds := []int64{1, 2}
	if !testing.Short() {
		light = []int{8, 10, 14}
		seeds = []int64{1, 2, 3}
	}
	sizesOf := func(fam string) []int {
		if fam == "pop" || fam == "churn" {
			return heavy
		}
		return light
	}
	var cases []Case
	for _, fam := range scenario.Families() {
		cs, err := BuildCases([]string{fam}, sizesOf(fam), seeds, 0.9)
		if err != nil {
			t.Fatalf("BuildCases(%s): %v", fam, err)
		}
		cases = append(cases, cs...)
	}
	return cases, Invariants()
}

// TestMetamorphicHarness is the acceptance suite: ≥5 generator
// families × ≥3 solvers against all six invariants.
func TestMetamorphicHarness(t *testing.T) {
	cases, invs := harnessMatrix(t)
	if fams := scenario.Families(); len(fams) < 5 {
		t.Fatalf("want ≥5 registered families, have %v", fams)
	}
	if len(invs) != 6 {
		t.Fatalf("want the 6-invariant catalog, have %d", len(invs))
	}
	failures, err := Run(context.Background(), engine.New(engine.Options{}), cases, invs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range failures {
		t.Errorf("%s", f)
	}
}

// TestRunDeterministicAcrossWorkers re-runs the harness serially and
// in parallel: the failure list (here: empty, but the property holds
// regardless) must be identical — engine.Map's task-index ordering at
// work.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cases, err := BuildCases([]string{"pop", "metro"}, []int{8}, []int64{5}, 0.85)
	if err != nil {
		t.Fatalf("BuildCases: %v", err)
	}
	invs := Invariants()
	serial, err := Run(context.Background(), engine.New(engine.Options{Workers: 1}), cases, invs)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	parallel, err := Run(context.Background(), engine.New(engine.Options{Workers: 8}), cases, invs)
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial found %d failures, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].String() != parallel[i].String() {
			t.Errorf("failure %d: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

// TestBuildCasesRejectsUnknownFamily pins the registry error path.
func TestBuildCasesRejectsUnknownFamily(t *testing.T) {
	if _, err := BuildCases([]string{"no-such-family"}, []int{8}, []int64{1}, 0.9); err == nil {
		t.Fatal("want error for unknown family")
	}
	if _, err := BuildCases([]string{"pop"}, []int{1}, []int64{1}, 0.9); err == nil {
		t.Fatal("want error for size below the family floor")
	}
}
