package scenariotest

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro"
	"repro/internal/scenario"
)

// This file implements invariant 6, resolve-equals-cold: session
// re-optimization (repro.Session) must be answer-preserving. For every
// registered solver, replaying a churn chain through Session.Resolve
// must produce answers byte-identical to cold Solve calls on the same
// mutated instances — warm artifacts (previous incumbent, saved root
// LP basis) are allowed to change effort counters and wall time, never
// the placement, objective, bound, or optimality flag.
//
// One carve-out, mirrored from the cover search's documented contract:
// a budget-capped or canceled exact solve returns a best-effort
// incumbent that is NOT canonicalized, so when either side of a
// comparison failed to prove optimality on a branch-and-bound solver
// the byte-compare is skipped (the flags and the carve-out itself are
// still exercised: heuristic solvers, which never prove optimality but
// are deterministic, are always compared).

// canonicalAnswer serializes a Result for byte-identity comparison
// with every effort block zeroed: the top-level Stats and the
// placement-embedded counter blocks carry wall clock, node, pivot and
// warm-start counts that warmth is expected to change.
func canonicalAnswer(r *repro.Result) (string, error) {
	cp := *r
	cp.Stats = repro.Stats{}
	if cp.Taps != nil {
		t := *cp.Taps
		t.Stats = repro.TapPlacement{}.Stats
		cp.Taps = &t
	}
	if cp.Beacons != nil {
		b := *cp.Beacons
		b.Stats = repro.BeaconPlacement{}.Stats
		cp.Beacons = &b
	}
	if cp.Sampling != nil {
		sp := *cp.Sampling
		sp.Stats = repro.SamplingSolution{}.Stats
		cp.Sampling = &sp
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", fmt.Errorf("marshal result: %w", err)
	}
	return string(b), nil
}

// cappedSearch reports whether a warm/cold pair sits outside the
// metamorphic lock: a tree search (Nodes > 0) that did not prove
// optimality on either side returns a budget-shaped incumbent, which
// the cover/MIP contracts allow to differ warm vs cold.
func cappedSearch(warm, cold *repro.Result) bool {
	if warm.Optimal && cold.Optimal {
		return false
	}
	return warm.Stats.Nodes > 0 || cold.Stats.Nodes > 0
}

// checkResolveEqualsCold drives every registered solver through a
// Session over the case's churn chain (tap solvers; the chain is the
// scenario's demands under successive traffic.Churn mutations) or over
// a repeated problem (beacon and sampling solvers, whose problem kinds
// the Delta classifier routes to cold re-solves), comparing each
// Resolve against a cold Solve of the same problem.
func checkResolveEqualsCold(ctx context.Context, c Case) error {
	s, err := scenario.Generate(c.Family, c.Size, c.Seed)
	if err != nil {
		return err
	}
	chain, _, err := repro.ChurnSteps(s, 2)
	if err != nil {
		return fmt.Errorf("churn chain: %w", err)
	}
	ps, err := c.probes()
	if err != nil {
		return err
	}
	for _, name := range repro.Solvers() {
		var problems []repro.Problem
		opts := []repro.Option{repro.WithCoverage(c.K)}
		memoized := false
		switch {
		case strings.HasPrefix(name, "tap/"):
			for _, in := range chain {
				problems = append(problems, in)
			}
			if name == repro.SolverTapMaxCover {
				opts = append(opts, repro.WithBudget(3))
			}
		case strings.HasPrefix(name, "beacon/"):
			// Churn mutates traffic, not topology: the probe set is the
			// same problem each step, re-solved through the session's
			// DeltaUnknown (cold) path.
			problems = []repro.Problem{ps, ps}
			memoized = true
		case name == repro.SolverSampleRates:
			// The rate assigner needs a pre-installed device set;
			// installing every edge keeps any coverage target feasible.
			all := make([]repro.EdgeID, c.Multi.G.NumEdges())
			for i := range all {
				all[i] = repro.EdgeID(i)
			}
			opts = append(opts, repro.WithInstalled(all...))
			problems = []repro.Problem{c.Multi, c.Multi}
		case strings.HasPrefix(name, "sample/"):
			problems = []repro.Problem{c.Multi, c.Multi}
			memoized = true
		default:
			// An out-of-tree solver registered by some other test: its
			// problem kind is unknown here.
			continue
		}
		sess, err := repro.NewSession(name, opts...)
		if err != nil {
			return err
		}
		for step, pb := range problems {
			warm, err := sess.Resolve(ctx, pb)
			if err != nil {
				return fmt.Errorf("%s step %d: resolve: %w", name, step, err)
			}
			var cold *repro.Result
			if memoized && name != repro.SolverTapMaxCover {
				cold, err = c.solve(ctx, name, pb)
			} else {
				cold, err = repro.Solve(ctx, name, pb, opts...)
			}
			if err != nil {
				return fmt.Errorf("%s step %d: cold: %w", name, step, err)
			}
			if cappedSearch(warm, cold) {
				continue
			}
			w, err := canonicalAnswer(warm)
			if err != nil {
				return err
			}
			cd, err := canonicalAnswer(cold)
			if err != nil {
				return err
			}
			if w != cd {
				return fmt.Errorf("%s step %d (%s delta): warm answer diverged from cold\nwarm: %s\ncold: %s",
					name, step, sess.LastDelta().Class, w, cd)
			}
		}
	}
	return nil
}
