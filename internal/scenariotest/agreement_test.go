package scenariotest

import (
	"context"
	"math"
	"testing"

	"repro"
	"repro/internal/engine"
	"repro/internal/passive"
	"repro/internal/scenario"
)

// TestSolverAgreement100 is the 100-instance cross-solver consistency
// suite over the scenario families (extending the PR 4 oracle suites
// beyond figure-shaped instances): on every instance tap/ilp,
// tap/greedy-gain (checked against the LP lower bound) and
// tap/portfolio must report mutually consistent Optimal/Bound/Gap
// relationships.
func TestSolverAgreement100(t *testing.T) {
	fams := scenario.Families()
	type cell struct {
		fam  string
		size int
		seed int64
	}
	base, span := 7, 5 // sizes 7..11 cycle
	if testing.Short() {
		base, span = 6, 3 // smaller instances, same 100-instance count
	}
	var cells []cell
	for i := 0; len(cells) < 100; i++ {
		cells = append(cells, cell{
			fam:  fams[i%len(fams)],
			size: base + (i/len(fams))%span,
			seed: int64(100 + i),
		})
	}
	const k = 0.92
	ctx := context.Background()
	_, err := engine.Map(ctx, engine.New(engine.Options{}), len(cells), func(ctx context.Context, i int) (struct{}, error) {
		c := cells[i]
		size := c.size
		if f, _ := scenario.Lookup(c.fam); size < f.MinSize {
			size = f.MinSize
		}
		s, err := scenario.Generate(c.fam, size, c.seed)
		if err != nil {
			t.Errorf("%s/%d/%d: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}
		in, err := s.Instance()
		if err != nil {
			t.Errorf("%s/%d/%d: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}

		ilp, err := repro.Solve(ctx, repro.SolverTapILP, in, repro.WithCoverage(k))
		if err != nil {
			t.Errorf("%s/%d/%d ilp: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}
		greedy, err := repro.Solve(ctx, repro.SolverTapGreedyGain, in, repro.WithCoverage(k))
		if err != nil {
			t.Errorf("%s/%d/%d greedy: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}
		port, err := repro.Solve(ctx, repro.SolverTapPortfolio, in, repro.WithCoverage(k))
		if err != nil {
			t.Errorf("%s/%d/%d portfolio: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}
		lpOpt, err := passive.LinearRelaxation(ctx, in, k)
		if err != nil {
			t.Errorf("%s/%d/%d relaxation: %v", c.fam, size, c.seed, err)
			return struct{}{}, nil
		}

		id := func() string { return c.fam }
		// Optimal/Bound/Gap self-consistency of the exact solver.
		if ilp.Optimal {
			if ilp.Gap != 0 {
				t.Errorf("%s/%d/%d: optimal ILP reports gap %g", id(), size, c.seed, ilp.Gap)
			}
		} else if ilp.Bound != 0 && math.Abs(ilp.Gap-math.Abs(ilp.Objective-ilp.Bound)) > 1e-9 {
			t.Errorf("%s/%d/%d: ILP gap %g ≠ |obj−bound| = %g", id(), size, c.seed, ilp.Gap, math.Abs(ilp.Objective-ilp.Bound))
		}
		if ilp.Bound > ilp.Objective+1e-6 {
			t.Errorf("%s/%d/%d: ILP bound %g above objective %g", id(), size, c.seed, ilp.Bound, ilp.Objective)
		}
		// Greedy vs the LP lower bound and the exact optimum.
		if greedy.Optimal {
			t.Errorf("%s/%d/%d: greedy claims optimality", id(), size, c.seed)
		}
		if greedy.Objective < math.Ceil(lpOpt-1e-6)-1e-6 {
			t.Errorf("%s/%d/%d: greedy %g below LP bound ⌈%g⌉", id(), size, c.seed, greedy.Objective, lpOpt)
		}
		if ilp.Optimal && greedy.Objective < ilp.Objective-1e-6 {
			t.Errorf("%s/%d/%d: greedy %g beats exact %g", id(), size, c.seed, greedy.Objective, ilp.Objective)
		}
		// The portfolio (greedy-gain + flow + ilp raced) can never do
		// worse than greedy-gain, nor better than the exact optimum.
		if port.Objective > greedy.Objective+1e-6 {
			t.Errorf("%s/%d/%d: portfolio %g worse than member greedy %g", id(), size, c.seed, port.Objective, greedy.Objective)
		}
		if ilp.Optimal && port.Objective < ilp.Objective-1e-6 {
			t.Errorf("%s/%d/%d: portfolio %g beats exact optimum %g", id(), size, c.seed, port.Objective, ilp.Objective)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
}
