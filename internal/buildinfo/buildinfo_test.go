package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() is empty")
	}
}

func TestFprintFormat(t *testing.T) {
	var sb strings.Builder
	Fprint(&sb, "sometool")
	out := sb.String()
	if !strings.HasPrefix(out, "sometool "+Version()+" ") {
		t.Fatalf("Fprint output = %q", out)
	}
	if !strings.Contains(out, runtime.Version()) || !strings.Contains(out, runtime.GOOS+"/"+runtime.GOARCH) {
		t.Fatalf("Fprint output missing toolchain/platform: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Fprint output not newline-terminated: %q", out)
	}
}
