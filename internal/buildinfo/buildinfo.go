// Package buildinfo reports the identity of the running binary from
// the information the Go linker embeds (runtime/debug.ReadBuildInfo):
// module version when the binary was built from a tagged module, VCS
// revision and commit time otherwise. Every CLI in cmd/ exposes it
// behind a -version flag, and placementd exports it as the
// build_info metric, so a deployed fleet can always be mapped back to
// the exact commit serving it.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version returns a single-token version for the running binary: the
// module version when stamped ("v1.2.3"), else the (abbreviated) VCS
// revision with a "-dirty" suffix for modified trees, else "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Fprint writes the canonical -version line for cmd:
//
//	placementd devel go1.22.0 linux/amd64
func Fprint(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s %s %s/%s\n", cmd, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
