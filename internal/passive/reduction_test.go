package passive

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
)

// bruteSetCover returns the optimal cover size by enumeration.
func bruteSetCover(sets [][]int, n int) int {
	best := math.MaxInt32
	for mask := 0; mask < 1<<len(sets); mask++ {
		covered := make([]bool, n)
		cnt := 0
		for s := range sets {
			if mask&(1<<s) != 0 {
				cnt++
				for _, e := range sets[s] {
					covered[e] = true
				}
			}
		}
		all := true
		for _, c := range covered {
			all = all && c
		}
		if all && cnt < best {
			best = cnt
		}
	}
	return best
}

func TestFromSetCoverRejectsUncoverable(t *testing.T) {
	if _, _, err := FromSetCover([][]int{{0}}, 2); err == nil {
		t.Fatal("element 1 uncoverable; want error")
	}
	if _, _, err := FromSetCover([][]int{{5}}, 2); err == nil {
		t.Fatal("out-of-range element; want error")
	}
}

func TestTheorem1GadgetSmall(t *testing.T) {
	// Sets: {0,1}, {1,2}, {2,3}; optimum is 2 ({0,1},{2,3}).
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}}
	in, setEdges, err := FromSetCover(sets, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := ExactCover(context.Background(), in, 1, cover.ExactOptions{})
	if !pl.Exact {
		t.Fatal("gadget not solved to optimality")
	}
	chosen := Canonicalize(sets, setEdges, pl.Edges, in)
	if len(chosen) != 2 {
		t.Fatalf("canonical cover size %d, want 2 (raw placement %v)", len(chosen), pl.Edges)
	}
	// Verify it is a cover.
	covered := make([]bool, 4)
	for _, si := range chosen {
		for _, e := range sets[si] {
			covered[e] = true
		}
	}
	for e, c := range covered {
		if !c {
			t.Fatalf("element %d uncovered by canonical solution", e)
		}
	}
}

// Property (Theorem 1): the optimal PPM(1) value on the gadget equals
// the optimal set-cover value, and canonicalization yields a valid cover
// of that size.
func TestTheorem1Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		sets := make([][]int, m)
		for s := range sets {
			size := 1 + rng.Intn(n)
			seen := map[int]bool{}
			for len(sets[s]) < size {
				e := rng.Intn(n)
				if !seen[e] {
					seen[e] = true
					sets[s] = append(sets[s], e)
				}
			}
		}
		// Ensure coverability.
		for e := 0; e < n; e++ {
			sets[e%m] = append(sets[e%m], e)
		}
		for s := range sets {
			sets[s] = dedupe(sets[s])
		}
		want := bruteSetCover(sets, n)

		in, setEdges, err := FromSetCover(sets, n)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		pl := ExactCover(context.Background(), in, 1, cover.ExactOptions{})
		if !pl.Exact {
			t.Logf("seed %d: not exact", seed)
			return false
		}
		if pl.Devices() != want {
			t.Logf("seed %d: PPM(1) opt %d != MSC opt %d", seed, pl.Devices(), want)
			return false
		}
		chosen := Canonicalize(sets, setEdges, pl.Edges, in)
		if len(chosen) > want {
			t.Logf("seed %d: canonical cover %d > opt %d", seed, len(chosen), want)
			return false
		}
		covered := make([]bool, n)
		for _, si := range chosen {
			for _, e := range sets[si] {
				covered[e] = true
			}
		}
		for _, c := range covered {
			if !c {
				t.Logf("seed %d: canonical solution is not a cover", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Property (Theorem 1 reverse): ToSetCover of any instance has the same
// optimum as PPM(1) on that instance.
func TestToSetCoverConsistency(t *testing.T) {
	in := smallInstance(42)
	ci := ToSetCover(in)
	if err := ci.Validate(); err != nil {
		t.Fatal(err)
	}
	res := cover.Exact(context.Background(), ci, ci.TotalWeight(), cover.ExactOptions{})
	pl := ExactCover(context.Background(), in, 1, cover.ExactOptions{})
	if len(res.Chosen) != pl.Devices() {
		t.Fatalf("set-cover optimum %d != PPM(1) optimum %d", len(res.Chosen), pl.Devices())
	}
}
