package passive

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// figure3Instance reproduces the POP of the paper's Figure 3: four
// traffics, two of weight 2 and two of weight 1, where the greedy picks
// the load-4 link first and needs 3 devices while the optimum is 2
// (the two load-3 links).
func figure3Instance(t *testing.T) *core.Instance {
	t.Helper()
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	f := g.AddNode("f")
	h := g.AddNode("h")

	l1 := g.AddEdge(a, b, 100) // carries t0,t1: load 4 — the greedy trap
	l2 := g.AddEdge(b, c, 100) // carries t0,t2: load 3
	l3 := g.AddEdge(b, d, 100) // carries t1,t3: load 3
	l4 := g.AddEdge(c, f, 100) // carries t2: load 1
	l5 := g.AddEdge(d, h, 100) // carries t3: load 1

	mk := func(nodes []graph.NodeID, edges []graph.EdgeID) graph.Path {
		p := graph.Path{Nodes: nodes, Edges: edges, Cost: float64(len(edges))}
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		return p
	}
	in := &core.Instance{G: g, Traffics: []core.Traffic{
		{ID: 0, Path: mk([]graph.NodeID{a, b, c}, []graph.EdgeID{l1, l2}), Volume: 2},
		{ID: 1, Path: mk([]graph.NodeID{a, b, d}, []graph.EdgeID{l1, l3}), Volume: 2},
		{ID: 2, Path: mk([]graph.NodeID{f, c, b}, []graph.EdgeID{l4, l2}), Volume: 1},
		{ID: 3, Path: mk([]graph.NodeID{h, d, b}, []graph.EdgeID{l5, l3}), Volume: 1},
	}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFigure3GreedyTrap(t *testing.T) {
	in := figure3Instance(t)
	// Loads: eC0A=4, eAB=3, eBC1=3, eC2A=1, eBC3=1.
	loads := in.EdgeLoads()
	want := []float64{4, 3, 3, 1, 1}
	for e, w := range want {
		if loads[e] != w {
			t.Fatalf("load[%d]=%g, want %g", e, loads[e], w)
		}
	}
	g := GreedyLoad(in, 1)
	if g.Devices() != 3 {
		t.Fatalf("greedy-load devices = %d, want 3 (the paper's trap)", g.Devices())
	}
	opt, err := SolveILP(context.Background(), in, 1, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Devices() != 2 {
		t.Fatalf("ILP devices = %d, want 2 (edges eAB, eBC1)", opt.Devices())
	}
	if opt.Fraction < 1-1e-9 {
		t.Fatalf("ILP coverage %g < 1", opt.Fraction)
	}
	ex := ExactCover(context.Background(), in, 1, cover.ExactOptions{})
	if ex.Devices() != 2 || !ex.Exact {
		t.Fatalf("exact-cover devices = %d exact=%v, want 2", ex.Devices(), ex.Exact)
	}
}

func TestCoverage(t *testing.T) {
	in := figure3Instance(t)
	vol, frac := Coverage(in, []graph.EdgeID{0})
	if vol != 4 || math.Abs(frac-4.0/6) > 1e-12 {
		t.Fatalf("coverage of heavy link = %g (%g), want 4 (2/3)", vol, frac)
	}
	vol, _ = Coverage(in, nil)
	if vol != 0 {
		t.Fatalf("empty placement covers %g", vol)
	}
	vol, frac = Coverage(in, []graph.EdgeID{1, 2})
	if vol != 6 || frac != 1 {
		t.Fatalf("optimal pair covers %g (%g)", vol, frac)
	}
}

func TestBadKPanics(t *testing.T) {
	in := figure3Instance(t)
	for _, k := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%g: want panic", k)
				}
			}()
			GreedyLoad(in, k)
		}()
	}
}

func smallInstance(seed int64) *core.Instance {
	cfg := topology.Config{Routers: 5, InterRouterLinks: 8, Endpoints: 5, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	in, err := traffic.Route(pop, demands)
	if err != nil {
		panic(err)
	}
	return in
}

// Property: on random small instances, for several k, the two exact
// methods agree, both formulations agree, and every heuristic is
// feasible and no better than the optimum.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := smallInstance(seed)
		for _, k := range []float64{0.75, 0.9, 1.0} {
			opt2, err := SolveILP(context.Background(), in, k, ILPOptions{Formulation: LP2})
			if err != nil {
				t.Logf("seed %d k=%g: LP2: %v", seed, k, err)
				return false
			}
			opt1, err := SolveILP(context.Background(), in, k, ILPOptions{Formulation: LP1})
			if err != nil {
				t.Logf("seed %d k=%g: LP1: %v", seed, k, err)
				return false
			}
			ex := ExactCover(context.Background(), in, k, cover.ExactOptions{})
			if opt1.Devices() != opt2.Devices() || ex.Devices() != opt2.Devices() {
				t.Logf("seed %d k=%g: LP1=%d LP2=%d cover=%d", seed, k, opt1.Devices(), opt2.Devices(), ex.Devices())
				return false
			}
			for _, h := range []Placement{GreedyLoad(in, k), GreedyGain(in, k), FlowHeuristic(in, k)} {
				if h.Fraction < k-1e-9 {
					t.Logf("seed %d k=%g: %s infeasible: %g < %g", seed, k, h.Method, h.Fraction, k)
					return false
				}
				if h.Devices() < opt2.Devices() {
					t.Logf("seed %d k=%g: %s beats the optimum (%d < %d)", seed, k, h.Method, h.Devices(), opt2.Devices())
					return false
				}
			}
			if opt2.Fraction < k-1e-9 {
				t.Logf("seed %d k=%g: ILP coverage %g < k", seed, k, opt2.Fraction)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPlacement(t *testing.T) {
	in := smallInstance(77)
	base, err := SolveILP(context.Background(), in, 0.9, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Force a poor first device and re-optimize around it.
	loads := in.EdgeLoads()
	worst := graph.EdgeID(0)
	for e := range loads {
		if loads[e] < loads[worst] {
			worst = graph.EdgeID(e)
		}
	}
	inc, err := SolveILP(context.Background(), in, 0.9, ILPOptions{Installed: []graph.EdgeID{worst}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range inc.Edges {
		if e == worst {
			found = true
		}
	}
	if !found {
		t.Fatal("installed edge missing from incremental solution")
	}
	if inc.Devices() < base.Devices() {
		t.Fatalf("incremental %d beats unconstrained optimum %d", inc.Devices(), base.Devices())
	}
	if inc.Fraction < 0.9-1e-9 {
		t.Fatalf("incremental coverage %g < 0.9", inc.Fraction)
	}
}

func TestBudgetVariant(t *testing.T) {
	in := smallInstance(78)
	opt, err := SolveILP(context.Background(), in, 0.9, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget exactly at the optimum: feasible, same count.
	b, err := SolveILP(context.Background(), in, 0.9, ILPOptions{Budget: opt.Devices()})
	if err != nil {
		t.Fatal(err)
	}
	if b.Devices() != opt.Devices() {
		t.Fatalf("budgeted devices %d != optimum %d", b.Devices(), opt.Devices())
	}
	// One below the optimum: must be infeasible.
	if opt.Devices() > 1 {
		if _, err := SolveILP(context.Background(), in, 0.9, ILPOptions{Budget: opt.Devices() - 1}); err == nil {
			t.Fatal("budget below optimum should be infeasible")
		}
	}
}

func TestMaxCoverage(t *testing.T) {
	in := smallInstance(79)
	prev := -1.0
	for _, budget := range []int{0, 1, 2, 4} {
		pl, err := MaxCoverage(context.Background(), in, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Devices() > budget {
			t.Fatalf("budget %d: used %d devices", budget, pl.Devices())
		}
		if pl.Covered < prev-1e-9 {
			t.Fatalf("coverage decreased with a larger budget: %g < %g", pl.Covered, prev)
		}
		prev = pl.Covered
	}
	if _, err := MaxCoverage(context.Background(), in, -1, nil); err == nil {
		t.Fatal("negative budget accepted")
	}
	// The expected-gain question of §4.3: marginal gain of one more
	// device on top of an installed base must be non-negative.
	first, err := MaxCoverage(context.Background(), in, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MaxCoverage(context.Background(), in, 1, first.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if second.Covered < first.Covered-1e-9 {
		t.Fatal("adding a device lowered coverage")
	}
}

func TestMaxCoverageFullBudget(t *testing.T) {
	in := smallInstance(80)
	pl, err := MaxCoverage(context.Background(), in, in.G.NumEdges(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Fraction < 1-1e-9 {
		t.Fatalf("full budget coverage %g < 1", pl.Fraction)
	}
}

func TestGreedyGainNeverWorseThanLoad(t *testing.T) {
	// Not a theorem, but holds on Figure 3 and most instances; verify at
	// least that both are feasible and gain ≤ load on the Fig 3 trap.
	in := figure3Instance(t)
	gl := GreedyLoad(in, 1)
	gg := GreedyGain(in, 1)
	if gg.Devices() > gl.Devices() {
		t.Fatalf("greedy-gain %d > greedy-load %d on Fig 3", gg.Devices(), gl.Devices())
	}
}

func TestPlacementSortedEdges(t *testing.T) {
	in := smallInstance(81)
	pl := GreedyGain(in, 1)
	for i := 1; i < len(pl.Edges); i++ {
		if pl.Edges[i-1] >= pl.Edges[i] {
			t.Fatal("placement edges not sorted")
		}
	}
}

func TestRandomizedRoundingFeasible(t *testing.T) {
	in := smallInstance(91)
	for _, k := range []float64{0.8, 0.95, 1.0} {
		pl, err := RandomizedRounding(context.Background(), in, k, 7)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Fraction < k-1e-9 {
			t.Fatalf("k=%g: coverage %g infeasible", k, pl.Fraction)
		}
		opt := ExactCover(context.Background(), in, k, cover.ExactOptions{})
		if pl.Devices() < opt.Devices() {
			t.Fatalf("k=%g: rounding %d beat the optimum %d", k, pl.Devices(), opt.Devices())
		}
	}
}

func TestRandomizedRoundingWithinLogFactor(t *testing.T) {
	// Property over seeds: the rounded solution stays within the
	// covering-LP guarantee (generous constant) of the optimum.
	in := smallInstance(92)
	opt := ExactCover(context.Background(), in, 0.9, cover.ExactOptions{})
	bound := float64(opt.Devices())*math.Log(float64(len(in.Traffics))+2)*2 + 2
	for seed := int64(0); seed < 8; seed++ {
		pl, err := RandomizedRounding(context.Background(), in, 0.9, seed)
		if err != nil {
			t.Fatal(err)
		}
		if float64(pl.Devices()) > bound {
			t.Fatalf("seed %d: rounding %d exceeds bound %g (opt %d)", seed, pl.Devices(), bound, opt.Devices())
		}
	}
}
