package passive

import (
	"math"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
)

// MECF is the Minimum Edge Cost Flow auxiliary graph of §4.3 (Theorem
// 2): a source S, one vertex w_e per edge of the POP, one vertex w_t per
// traffic, and a sink T. Arcs S→w_e (cost 1, unbounded), w_e→w_t for
// every edge-path adjacency (cost 0, unbounded) and w_t→T (cost 0,
// capacity v_t). Routing k·V units of flow from S to T with the binary
// arc-cost objective solves PPM(k).
type MECF struct {
	Net *flow.Network
	// S and T are the source and sink node indices in Net.
	S, T int
	// EdgeArc[e] is the S→w_e arc of POP edge e; its flow being positive
	// means a measurement point on e.
	EdgeArc []flow.Arc
	// TrafficArc[t] is the w_t→T arc of traffic t; its flow is the
	// volume of t that is monitored.
	TrafficArc []flow.Arc

	in *core.Instance
}

// BuildMECF constructs the auxiliary graph with the given cost on the
// S→w_e arcs. Theorem 2's exact model uses cost 1 with a *binary*
// objective, which no polynomial flow algorithm optimizes; the linear
// relaxation of §4.3 ("Heuristics") instead charges each unit of flow
// through w_e the inverse of e's load, so that a plain min-cost flow
// reproduces the greedy behaviour. costS selects the per-unit cost of
// arc S→w_e given the edge and its load.
func BuildMECF(in *core.Instance, costS func(e graph.Edge, load float64) float64) *MECF {
	nEdges := in.G.NumEdges()
	nTraffics := len(in.Traffics)
	// Node layout: 0 = S, 1 = T, 2..2+nEdges-1 = w_e, then w_t.
	net := flow.NewNetwork(2 + nEdges + nTraffics)
	m := &MECF{
		Net:        net,
		S:          0,
		T:          1,
		EdgeArc:    make([]flow.Arc, nEdges),
		TrafficArc: make([]flow.Arc, nTraffics),
		in:         in,
	}
	loads := in.EdgeLoads()
	for e := 0; e < nEdges; e++ {
		c := costS(in.G.Edge(graph.EdgeID(e)), loads[e])
		m.EdgeArc[e] = net.AddArc(m.S, m.edgeNode(e), math.Inf(1), c)
	}
	for ti, t := range in.Traffics {
		m.TrafficArc[ti] = net.AddArc(m.trafficNode(ti), m.T, t.Volume, 0)
		for _, e := range t.Path.Edges {
			net.AddArc(m.edgeNode(int(e)), m.trafficNode(ti), math.Inf(1), 0)
		}
	}
	return m
}

func (m *MECF) edgeNode(e int) int    { return 2 + e }
func (m *MECF) trafficNode(t int) int { return 2 + m.in.G.NumEdges() + t }

// InverseLoadCost is the §4.3 heuristic cost: 1/load on loaded links
// (unloaded links get an effectively prohibitive cost).
func InverseLoadCost(_ graph.Edge, load float64) float64 {
	if load <= 0 {
		return 1e9
	}
	return 1 / load
}

// UnitCost charges every opened edge arc the same; combined with the
// pruning pass of FlowHeuristic it gives a pure feasibility rounding.
func UnitCost(graph.Edge, float64) float64 { return 1 }

// FlowHeuristic solves the linear-cost relaxation of MECF as a min-cost
// flow and rounds it: every S→w_e arc carrying flow becomes a tap
// device, then a reverse-delete pass drops devices whose removal keeps
// the coverage target (redundancy can appear because the relaxation
// splits traffics across edges). It formalizes the greedy family as
// flows, per §4.3.
func FlowHeuristic(in *core.Instance, k float64) Placement {
	checkK(k)
	m := BuildMECF(in, InverseLoadCost)
	target := k * in.TotalVolume()
	res := m.Net.MinCostFlow(m.S, m.T, target)
	if !res.Full {
		// Cannot happen on valid instances: every traffic can reach T
		// through any of its edges.
		panic("passive: MECF flow could not route the coverage target")
	}
	var edges []graph.EdgeID
	for e, a := range m.EdgeArc {
		if m.Net.Flow(a) > 1e-9 {
			edges = append(edges, graph.EdgeID(e))
		}
	}
	edges = pruneRedundant(in, edges, target)
	return finish(in, edges, false, "flow-heuristic")
}

// pruneRedundant removes edges whose deletion keeps coverage ≥ target,
// trying lightest-coverage edges first.
func pruneRedundant(in *core.Instance, edges []graph.EdgeID, target float64) []graph.EdgeID {
	loads := in.EdgeLoads()
	order := append([]graph.EdgeID(nil), edges...)
	// Try removing lightly loaded links first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && loads[order[j]] < loads[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	keep := make(map[graph.EdgeID]bool, len(edges))
	for _, e := range edges {
		keep[e] = true
	}
	for _, e := range order {
		keep[e] = false
		vol, _ := Coverage(in, keysOf(keep))
		if vol < target-1e-9 {
			keep[e] = true
		}
	}
	return keysOf(keep)
}

func keysOf(m map[graph.EdgeID]bool) []graph.EdgeID {
	var out []graph.EdgeID
	for e, ok := range m {
		if ok {
			out = append(out, e)
		}
	}
	return out
}
