package passive

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mip"
)

// Formulation selects which of the paper's two MIP formulations to use.
type Formulation int

const (
	// LP2 is the compact formulation (Linear program 2 of §4.3):
	// binary x_e, δ_t ∈ [0,1] with Σ_{e∈p_t} x_e ≥ δ_t and
	// Σ_t δ_t·v_t ≥ k·V. Default.
	LP2 Formulation = iota
	// LP1 is the arc-path flow formulation (Linear program 1): flow
	// variables f_t^e on the MECF graph with the binary arc-opening
	// variables x_e. Kept for cross-validation; larger than LP2.
	LP1
)

// ILPOptions configures SolveILP.
type ILPOptions struct {
	Formulation Formulation
	// Installed lists links that already carry a device; their x_e is
	// fixed to 1 and they do not count towards Budget. This is the
	// paper's incremental-placement variant (§4.3).
	Installed []graph.EdgeID
	// Budget, when positive, caps the number of devices (installed ones
	// included): the paper's "limited number of devices" variant. The
	// problem may then be infeasible.
	Budget int
	// MaxNodes caps branch-and-bound nodes (0 = solver default).
	MaxNodes int
	// Gap is the absolute optimality gap for branch-and-bound pruning
	// (0 = solver default, effectively prove to optimality).
	Gap float64
	// RelGap is the relative optimality gap: subtrees within
	// Gap + RelGap·|incumbent| of the incumbent are pruned, so pruning
	// scales with the objective on large instances (0 = off).
	RelGap float64
}

// SolveILP solves PPM(k) exactly with the paper's MIP formulation (the
// "ILP" curves of Figures 7 and 8, solved by CPLEX in the paper and by
// internal/mip here). It returns an error when the model is infeasible
// (possible only with a Budget); cancelling ctx or exhausting the node
// budget returns the best incumbent found so far with Exact = false
// (the greedy warm start guarantees one always exists).
func SolveILP(ctx context.Context, in *core.Instance, k float64, opts ILPOptions) (Placement, error) {
	checkK(k)
	if err := in.Validate(); err != nil {
		return Placement{}, err
	}
	switch opts.Formulation {
	case LP2:
		return solveLP2(ctx, in, k, opts)
	case LP1:
		return solveLP1(ctx, in, k, opts)
	}
	return Placement{}, fmt.Errorf("passive: unknown formulation %d", opts.Formulation)
}

// solveLP2 builds Linear program 2 of §4.3.
func solveLP2(ctx context.Context, in *core.Instance, k float64, opts ILPOptions) (Placement, error) {
	p := mip.NewProblem(lp.Minimize)
	m := in.G.NumEdges()

	// x_e = 1 iff a measurement point is installed on e.
	xs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		xs[e] = p.AddBinaryVariable(fmt.Sprintf("x%d", e), 1)
	}
	// δ_t = monitored share of traffic t.
	ds := make([]lp.Var, len(in.Traffics))
	for ti := range in.Traffics {
		ds[ti] = p.AddVariable(fmt.Sprintf("d%d", ti), 0, 1, 0)
	}
	// Σ_{e∈p_t} x_e ≥ δ_t for every traffic.
	for ti, t := range in.Traffics {
		terms := make([]lp.Term, 0, t.Path.Len()+1)
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: xs[e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: ds[ti], Coef: -1})
		p.AddConstraint(lp.GE, 0, terms...)
	}
	// Σ_t δ_t·v_t ≥ k·V.
	cov := make([]lp.Term, len(in.Traffics))
	for ti, t := range in.Traffics {
		cov[ti] = lp.Term{Var: ds[ti], Coef: t.Volume}
	}
	p.AddConstraint(lp.GE, k*in.TotalVolume(), cov...)

	applyCommonILP(p, xs, opts)
	p.SetOptions(mipOptions(opts, lp2Incumbent(in, k, opts, p.NumVariables(), xs, ds)))

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return Placement{}, err
	}
	return ilpPlacement(in, xs, sol, "ilp-lp2")
}

// lp2Incumbent builds a warm-start solution for LP 2 from the greedy
// heuristic (plus any pre-installed devices): a feasible placement that
// lets branch-and-bound prune from the first node.
func lp2Incumbent(in *core.Instance, k float64, opts ILPOptions, nVars int, xs, ds []lp.Var) []float64 {
	greedy := GreedyGain(in, k)
	chosen := make(map[graph.EdgeID]bool, len(greedy.Edges)+len(opts.Installed))
	for _, e := range greedy.Edges {
		chosen[e] = true
	}
	for _, e := range opts.Installed {
		chosen[e] = true
	}
	x := make([]float64, nVars)
	for e, v := range xs {
		if chosen[graph.EdgeID(e)] {
			x[v] = 1
		}
	}
	for ti, t := range in.Traffics {
		for _, e := range t.Path.Edges {
			if chosen[e] {
				x[ds[ti]] = 1
				break
			}
		}
	}
	return x
}

// mipOptions combines the caller's node budget and gap with a warm
// start.
func mipOptions(opts ILPOptions, incumbent []float64) mip.Options {
	return mip.Options{MaxNodes: opts.MaxNodes, Gap: opts.Gap, RelGap: opts.RelGap, Incumbent: incumbent}
}

// solveLP1 builds Linear program 1 of §4.3: the arc-path form with flow
// variables f_t^e for every (edge, traffic) adjacency of the MECF graph.
func solveLP1(ctx context.Context, in *core.Instance, k float64, opts ILPOptions) (Placement, error) {
	p := mip.NewProblem(lp.Minimize)
	m := in.G.NumEdges()
	onEdge := in.TrafficsOnEdge()

	xs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		xs[e] = p.AddBinaryVariable(fmt.Sprintf("x%d", e), 1)
	}
	// f[e][ti] exists iff traffic ti crosses edge e.
	f := make([]map[int]lp.Var, m)
	for e := 0; e < m; e++ {
		f[e] = make(map[int]lp.Var, len(onEdge[e]))
		for _, ti := range onEdge[e] {
			f[e][ti] = p.AddVariable(fmt.Sprintf("f%d_%d", e, ti), 0, lp.Inf, 0)
		}
	}
	// Σ_{t∈π_e} f_t^e ≤ x_e · Σ_{t∈π_e} v_t (no flow without paying e).
	for e := 0; e < m; e++ {
		if len(onEdge[e]) == 0 {
			continue
		}
		capSum := 0.0
		terms := make([]lp.Term, 0, len(onEdge[e])+1)
		for _, ti := range onEdge[e] {
			capSum += in.Traffics[ti].Volume
			terms = append(terms, lp.Term{Var: f[e][ti], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: xs[e], Coef: -capSum})
		p.AddConstraint(lp.LE, 0, terms...)
	}
	// Σ_{e∈p_t} f_t^e ≤ v_t (a traffic is counted at most once).
	for ti, t := range in.Traffics {
		terms := make([]lp.Term, 0, t.Path.Len())
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: f[e][ti], Coef: 1})
		}
		p.AddConstraint(lp.LE, t.Volume, terms...)
	}
	// Total monitored flow ≥ k·V.
	var all []lp.Term
	for e := 0; e < m; e++ {
		for _, ti := range onEdge[e] {
			all = append(all, lp.Term{Var: f[e][ti], Coef: 1})
		}
	}
	p.AddConstraint(lp.GE, k*in.TotalVolume(), all...)

	applyCommonILP(p, xs, opts)

	// Warm start: the greedy placement with each covered traffic's full
	// volume assigned to its first chosen edge.
	greedy := GreedyGain(in, k)
	chosen := make(map[graph.EdgeID]bool, len(greedy.Edges)+len(opts.Installed))
	for _, e := range greedy.Edges {
		chosen[e] = true
	}
	for _, e := range opts.Installed {
		chosen[e] = true
	}
	inc := make([]float64, p.NumVariables())
	for e, v := range xs {
		if chosen[graph.EdgeID(e)] {
			inc[v] = 1
		}
	}
	for ti, t := range in.Traffics {
		for _, e := range t.Path.Edges {
			if chosen[e] {
				inc[f[e][ti]] = t.Volume
				break
			}
		}
	}
	p.SetOptions(mipOptions(opts, inc))

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return Placement{}, err
	}
	return ilpPlacement(in, xs, sol, "ilp-lp1")
}

// applyCommonILP adds the incremental and budget variants shared by
// both formulations.
func applyCommonILP(p *mip.Problem, xs []lp.Var, opts ILPOptions) {
	for _, e := range opts.Installed {
		p.FixVariable(xs[e], 1)
	}
	if opts.Budget > 0 {
		terms := make([]lp.Term, len(xs))
		for i, x := range xs {
			terms[i] = lp.Term{Var: x, Coef: 1}
		}
		p.AddConstraint(lp.LE, float64(opts.Budget), terms...)
	}
}

func ilpPlacement(in *core.Instance, xs []lp.Var, sol *mip.Solution, method string) (Placement, error) {
	exact := false
	switch sol.Status {
	case lp.Optimal:
		exact = true
	case lp.Canceled, lp.IterLimit:
		// Early stop: report the incumbent as a heuristic result when
		// one exists (the greedy warm start normally guarantees it).
		if sol.X == nil {
			return Placement{}, fmt.Errorf("passive: %s: solver stopped with status %v and no incumbent", method, sol.Status)
		}
	case lp.Infeasible:
		return Placement{}, fmt.Errorf("passive: %s: model infeasible (budget too small?)", method)
	default:
		return Placement{}, fmt.Errorf("passive: %s: solver stopped with status %v", method, sol.Status)
	}
	var edges []graph.EdgeID
	for e, x := range xs {
		if sol.Value(x) > 0.5 {
			edges = append(edges, graph.EdgeID(e))
		}
	}
	pl := finish(in, edges, exact, method)
	pl.Stats = core.SolveStats{Nodes: sol.Nodes, Pivots: sol.Pivots,
		Refactorizations: sol.Refactorizations, DevexResets: sol.DevexResets, WarmStarts: sol.WarmStarts,
		CutsAdded: sol.CutsAdded, VarsFixed: sol.VarsFixed, PresolveRemoved: sol.PresolveRemoved,
		StrongBranches: sol.StrongBranches, Bound: sol.Bound}
	return pl, nil
}

// MaxCoverage solves the dual question of §4.3's budget variant: given
// at most `budget` devices (plus the already Installed ones), place them
// to maximize the monitored volume. This answers the paper's "estimate
// the expected gain in buying one or a set of new devices".
func MaxCoverage(ctx context.Context, in *core.Instance, budget int, installed []graph.EdgeID) (Placement, error) {
	if budget < 0 {
		return Placement{}, fmt.Errorf("passive: negative budget %d", budget)
	}
	if err := in.Validate(); err != nil {
		return Placement{}, err
	}
	p := mip.NewProblem(lp.Maximize)
	m := in.G.NumEdges()
	xs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		xs[e] = p.AddBinaryVariable(fmt.Sprintf("x%d", e), 0)
	}
	ds := make([]lp.Var, len(in.Traffics))
	for ti, t := range in.Traffics {
		ds[ti] = p.AddVariable(fmt.Sprintf("d%d", ti), 0, 1, t.Volume)
	}
	for ti, t := range in.Traffics {
		terms := make([]lp.Term, 0, t.Path.Len()+1)
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: xs[e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: ds[ti], Coef: -1})
		p.AddConstraint(lp.GE, 0, terms...)
	}
	for _, e := range installed {
		p.FixVariable(xs[e], 1)
	}
	budgetTerms := make([]lp.Term, m)
	for e, x := range xs {
		budgetTerms[e] = lp.Term{Var: x, Coef: 1}
	}
	p.AddConstraint(lp.LE, float64(budget+len(installed)), budgetTerms...)

	// Warm start: greedily take the best-gain edges within the budget.
	inc := make([]float64, p.NumVariables())
	chosen := make(map[graph.EdgeID]bool, budget+len(installed))
	for _, e := range installed {
		chosen[e] = true
	}
	onEdge := in.TrafficsOnEdge()
	monitored := make([]bool, len(in.Traffics))
	markCovered := func() {
		for e := range chosen {
			for _, ti := range onEdge[e] {
				monitored[ti] = true
			}
		}
	}
	markCovered()
	for picks := 0; picks < budget; picks++ {
		best, bestGain := -1, 0.0
		for e := 0; e < m; e++ {
			if chosen[graph.EdgeID(e)] {
				continue
			}
			gain := 0.0
			for _, ti := range onEdge[e] {
				if !monitored[ti] {
					gain += in.Traffics[ti].Volume
				}
			}
			if gain > bestGain {
				best, bestGain = e, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[graph.EdgeID(best)] = true
		for _, ti := range onEdge[best] {
			monitored[ti] = true
		}
	}
	for e, v := range xs {
		if chosen[graph.EdgeID(e)] {
			inc[v] = 1
		}
	}
	for ti := range in.Traffics {
		if monitored[ti] {
			inc[ds[ti]] = 1
		}
	}
	p.SetOptions(mip.Options{Incumbent: inc})

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return Placement{}, err
	}
	return ilpPlacement(in, xs, sol, "max-coverage")
}
