// Package passive solves the paper's Partial Passive Monitoring problem
// PPM(k) (§4): select a minimum set of links to equip with tap devices
// so that the traffics crossing the selected links carry at least a
// fraction k of the total bandwidth.
//
// The package provides every solution strategy the paper discusses:
//
//   - GreedyLoad — the "natural" greedy of §4.3 that picks the most
//     loaded link first (the baseline plotted in Figures 7 and 8);
//   - GreedyGain — the marginal-gain greedy, i.e. the classical partial
//     set-cover greedy with the Slavík guarantee;
//   - FlowHeuristic — the linear-cost relaxation of the Minimum Edge
//     Cost Flow model, computed as a min-cost flow (§4.3 "Heuristics");
//   - SolveILP — the exact Mixed Integer Programming formulations LP 1
//     (arc-path) and LP 2 (compact), including the incremental and
//     device-budget variants (§4.3 "MIP formulation");
//   - ExactCover — an exact combinatorial branch-and-bound over the
//     set-cover view (Theorem 1), used where the MIP would be slow.
package passive

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
)

// Placement is the outcome of a PPM(k) solver.
type Placement struct {
	// Edges is the set of links selected for tap devices, sorted.
	Edges []graph.EdgeID
	// Covered is the total volume of the traffics crossing a selected
	// link; Fraction is Covered divided by the instance volume.
	Covered  float64
	Fraction float64
	// Exact is true when the placement is provably optimal; a canceled
	// or node-capped exact solve reports its incumbent with Exact =
	// false.
	Exact bool
	// Method names the algorithm that produced the placement.
	Method string
	// Stats carries the solver effort counters (zero for pure
	// heuristics).
	Stats core.SolveStats
}

// Devices returns the number of tap devices in the placement (the
// paper's y-axis in Figures 7 and 8).
func (p Placement) Devices() int { return len(p.Edges) }

// Coverage returns the total volume and fraction of traffic monitored
// when tap devices sit on the given edges (a traffic is monitored when
// at least one edge of its path is tapped — no sampling in §4).
func Coverage(in *core.Instance, edges []graph.EdgeID) (volume, fraction float64) {
	tapped := make([]bool, in.G.NumEdges())
	for _, e := range edges {
		tapped[e] = true
	}
	for _, t := range in.Traffics {
		for _, e := range t.Path.Edges {
			if tapped[e] {
				volume += t.Volume
				break
			}
		}
	}
	total := in.TotalVolume()
	if total > 0 {
		fraction = volume / total
	}
	return volume, fraction
}

func checkK(k float64) {
	if k <= 0 || k > 1 {
		panic(fmt.Sprintf("passive: k = %g outside (0,1]", k))
	}
}

func finish(in *core.Instance, edges []graph.EdgeID, exact bool, method string) Placement {
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	vol, frac := Coverage(in, edges)
	return Placement{Edges: edges, Covered: vol, Fraction: frac, Exact: exact, Method: method}
}

// GreedyLoad implements the baseline greedy of §4.3: links are chosen in
// decreasing *static* load order until the coverage target is met. This
// is the algorithm the paper's Figure 3 counter-example defeats, and the
// "Greedy algorithm" curve of Figures 7 and 8.
func GreedyLoad(in *core.Instance, k float64) Placement {
	checkK(k)
	loads := in.EdgeLoads()
	order := make([]graph.EdgeID, in.G.NumEdges())
	for i := range order {
		order[i] = graph.EdgeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	target := k * in.TotalVolume()
	onEdge := in.TrafficsOnEdge()
	monitored := make([]bool, len(in.Traffics))
	covered := 0.0
	var chosen []graph.EdgeID
	for _, e := range order {
		if covered >= target-1e-12 {
			break
		}
		gain := 0.0
		for _, ti := range onEdge[e] {
			if !monitored[ti] {
				gain += in.Traffics[ti].Volume
			}
		}
		if gain <= 0 {
			continue // nothing new on this link
		}
		chosen = append(chosen, e)
		for _, ti := range onEdge[e] {
			monitored[ti] = true
		}
		covered += gain
	}
	return finish(in, chosen, false, "greedy-load")
}

// GreedyGain implements the marginal-gain greedy: at every step it picks
// the link monitoring the largest volume of yet-unmonitored traffic
// ("always choose the edge which permits to monitor the larger volume of
// traffic not monitored yet", §4.3). It is the greedy of the Minimum
// Partial Cover analysis [19, 20].
func GreedyGain(in *core.Instance, k float64) Placement {
	checkK(k)
	ci := toCover(in)
	res := cover.GreedyPartial(ci, k*in.TotalVolume())
	if !res.Feasible {
		// Cannot happen on valid instances: every traffic crosses at
		// least one edge, so full coverage is always achievable.
		panic("passive: greedy found valid instance infeasible")
	}
	return finish(in, edgeIDs(res.Chosen), false, "greedy-gain")
}

// ExactCover solves PPM(k) exactly through the set-cover equivalence of
// Theorem 1 using combinatorial branch and bound. On the paper's
// instance sizes it returns the same optima as the MIP while scaling to
// the 1980-traffic instance of Figure 8. Cancelling ctx mid-search
// returns the best incumbent found so far with Exact = false.
func ExactCover(ctx context.Context, in *core.Instance, k float64, opts cover.ExactOptions) Placement {
	checkK(k)
	ci := toCover(in)
	res := cover.Exact(ctx, ci, k*in.TotalVolume(), opts)
	if !res.Feasible {
		panic("passive: exact search found valid instance infeasible")
	}
	pl := finish(in, edgeIDs(res.Chosen), res.Exact, "exact-cover")
	pl.Stats.Nodes = res.Nodes
	pl.Stats.VarsFixed = res.SetsBanned
	pl.Stats.SubtreeTasks = res.SubtreeTasks
	pl.Stats.Steals = res.Steals
	pl.Stats.DominancePrunes = res.DominancePrunes
	pl.Stats.Pivots = res.Pivots
	pl.Stats.WarmStarts = res.WarmStarts
	return pl
}

// toCover converts a PPM instance into the set-cover view of Theorem 1:
// elements are traffics (weighted by volume), sets are links.
func toCover(in *core.Instance) cover.Instance {
	ci := cover.Instance{
		NumElements: len(in.Traffics),
		Weights:     make([]float64, len(in.Traffics)),
		Sets:        make([][]int, in.G.NumEdges()),
	}
	for i, t := range in.Traffics {
		ci.Weights[i] = t.Volume
	}
	onEdge := in.TrafficsOnEdge()
	for e, ts := range onEdge {
		ci.Sets[e] = ts
	}
	return ci
}

func edgeIDs(sets []int) []graph.EdgeID {
	out := make([]graph.EdgeID, len(sets))
	for i, s := range sets {
		out[i] = graph.EdgeID(s)
	}
	return out
}
