package passive

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
)

// RandomizedRounding is the other flow-based heuristic §4.3 mentions
// ("The MECF framework allows to develop other flow-based heuristics
// such as randomized rounding or branching algorithms"): solve the LP
// relaxation of Linear program 2, then repeatedly open each link e with
// probability min(1, α·x̄_e), boosting α until the coverage target is
// met; a reverse-delete pass prunes redundant devices. The result is a
// feasible placement whose expected size is within O(log) of the LP
// optimum, per the classical covering-LP rounding argument.
func RandomizedRounding(ctx context.Context, in *core.Instance, k float64, seed int64) (Placement, error) {
	checkK(k)
	if err := in.Validate(); err != nil {
		return Placement{}, err
	}
	frac, _, err := lp2Relaxation(ctx, in, k)
	if err != nil {
		return Placement{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	target := k * in.TotalVolume()

	chosen := make(map[graph.EdgeID]bool)
	// Boost the opening probabilities geometrically until feasible; the
	// relaxation guarantees feasibility at full opening, so this loop
	// terminates (α doubling reaches min(1, α·x̄)=1 for every x̄ > 0, and
	// links with x̄ = 0 are unnecessary for feasibility only if the LP
	// found a cover without them — rounding keeps drawing until the
	// target is reached, falling back to opening everything).
	for alpha := 1.0; ; alpha *= 2 {
		if ctx.Err() != nil {
			// Cancelled mid-boost: open everything still uncovered so
			// the caller gets a feasible (if unpruned-quality) incumbent
			// immediately — the same degraded-not-failed contract the
			// tree solvers honor on cancellation.
			for e := 0; e < in.G.NumEdges(); e++ {
				chosen[graph.EdgeID(e)] = true
			}
			break
		}
		for e, xbar := range frac {
			if chosen[graph.EdgeID(e)] {
				continue
			}
			p := math.Min(1, alpha*xbar)
			if p > 0 && rng.Float64() < p {
				chosen[graph.EdgeID(e)] = true
			}
		}
		vol, _ := Coverage(in, keysOf(chosen))
		if vol >= target-1e-9 {
			break
		}
		if alpha > float64(uint64(1)<<40) {
			// Degenerate LP solution: open everything still uncovered.
			for e := 0; e < in.G.NumEdges(); e++ {
				chosen[graph.EdgeID(e)] = true
			}
			break
		}
	}
	edges := pruneRedundant(in, keysOf(chosen), target)
	return finish(in, edges, false, "randomized-rounding"), nil
}

// lp2Relaxation solves the continuous relaxation of Linear program 2
// and returns the fractional x̄ per edge plus the relaxation optimum
// (the LP lower bound on the device count).
func lp2Relaxation(ctx context.Context, in *core.Instance, k float64) ([]float64, float64, error) {
	p := lp.NewProblem(lp.Minimize)
	m := in.G.NumEdges()
	xs := make([]lp.Var, m)
	for e := 0; e < m; e++ {
		xs[e] = p.AddVariable("x", 0, 1, 1)
	}
	ds := make([]lp.Var, len(in.Traffics))
	for ti := range in.Traffics {
		ds[ti] = p.AddVariable("d", 0, 1, 0)
	}
	for ti, t := range in.Traffics {
		terms := make([]lp.Term, 0, t.Path.Len()+1)
		for _, e := range t.Path.Edges {
			terms = append(terms, lp.Term{Var: xs[e], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: ds[ti], Coef: -1})
		p.AddConstraint(lp.GE, 0, terms...)
	}
	cov := make([]lp.Term, len(in.Traffics))
	for ti, t := range in.Traffics {
		cov[ti] = lp.Term{Var: ds[ti], Coef: t.Volume}
	}
	p.AddConstraint(lp.GE, k*in.TotalVolume(), cov...)

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, errStatus(sol.Status)
	}
	out := make([]float64, m)
	for e := 0; e < m; e++ {
		out[e] = sol.Value(xs[e])
	}
	return out, sol.Objective, nil
}

type errStatus lp.Status

func (e errStatus) Error() string {
	return "passive: LP relaxation ended with status " + lp.Status(e).String()
}
