package passive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/graph"
)

// FromSetCover builds the Theorem 1 gadget: a PPM(1) instance whose
// optimal solutions correspond one-to-one (after the substitution
// argument of the proof) to optimal set covers of the given Minimum Set
// Cover instance. The construction follows the proof of Theorem 1:
//
//   - every set c_i becomes an edge e_i;
//   - whenever c_i ∩ c_j ≠ ∅, two bridging edges e_ij, e_ji close a
//     4-cycle with e_i and e_j;
//   - every element u becomes a unit traffic whose path walks through
//     the edges of the sets containing u, bridged by the e_ij edges.
//
// SetEdges[i] reports which POP edge realizes set c_i, so tests can map
// solutions back.
func FromSetCover(sets [][]int, numElements int) (in *core.Instance, setEdges []graph.EdgeID, err error) {
	ci := cover.Instance{NumElements: numElements, Sets: sets}
	if err := ci.Validate(); err != nil {
		return nil, nil, err
	}
	// Every element must be in some set, otherwise PPM(1) is infeasible
	// and the equivalence is void.
	inSome := make([]bool, numElements)
	containing := make([][]int, numElements) // element -> set indices
	for si, s := range sets {
		for _, e := range s {
			inSome[e] = true
			containing[e] = append(containing[e], si)
		}
	}
	for e, ok := range inSome {
		if !ok {
			return nil, nil, fmt.Errorf("passive: element %d not covered by any set", e)
		}
	}

	g := graph.New()
	// Edge e_i for set c_i: its own pair of vertices (2|C| vertices as
	// in the proof).
	setEdges = make([]graph.EdgeID, len(sets))
	heads := make([]graph.NodeID, len(sets))
	tails := make([]graph.NodeID, len(sets))
	for i := range sets {
		heads[i] = g.AddNode(fmt.Sprintf("c%d.a", i))
		tails[i] = g.AddNode(fmt.Sprintf("c%d.b", i))
		setEdges[i] = g.AddEdge(heads[i], tails[i], 1)
	}
	// Bridging 4-cycle edges for intersecting sets: e_ij joins the tail
	// of e_i to the head of e_j, e_ji joins the tail of e_j to the head
	// of e_i. We give bridges a large routing weight so shortest paths
	// irrelevant here stay deterministic.
	type sp struct{ i, j int }
	bridge := make(map[sp]graph.EdgeID)
	intersects := func(a, b []int) bool {
		seen := make(map[int]bool, len(a))
		for _, x := range a {
			seen[x] = true
		}
		for _, x := range b {
			if seen[x] {
				return true
			}
		}
		return false
	}
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if !intersects(sets[i], sets[j]) {
				continue
			}
			bridge[sp{i, j}] = g.AddEdge(tails[i], heads[j], 1)
			bridge[sp{j, i}] = g.AddEdge(tails[j], heads[i], 1)
		}
	}

	// One unit traffic per element: walk e_{s1}, bridge, e_{s2}, ...
	in = &core.Instance{G: g}
	for u := 0; u < numElements; u++ {
		cs := containing[u]
		nodes := []graph.NodeID{heads[cs[0]]}
		var edges []graph.EdgeID
		cost := 0.0
		cur := heads[cs[0]]
		push := func(e graph.EdgeID) {
			edge := g.Edge(e)
			cur = edge.Other(cur)
			nodes = append(nodes, cur)
			edges = append(edges, e)
			cost += edge.Weight
		}
		push(setEdges[cs[0]])
		for x := 1; x < len(cs); x++ {
			push(bridge[sp{cs[x-1], cs[x]}])
			push(setEdges[cs[x]])
		}
		p := graph.Path{Nodes: nodes, Edges: edges, Cost: cost}
		if err := p.Validate(g); err != nil {
			return nil, nil, fmt.Errorf("passive: gadget path for element %d: %w", u, err)
		}
		in.Traffics = append(in.Traffics, core.Traffic{ID: u, Path: p, Volume: 1})
	}
	return in, setEdges, nil
}

// ToSetCover is the reverse direction of Theorem 1: any PPM instance is
// a (partial, weighted) set-cover instance with S = D and C = {π_e}.
// It is exactly the conversion the solvers use internally, exported for
// the equivalence tests.
func ToSetCover(in *core.Instance) cover.Instance {
	return toCover(in)
}

// Canonicalize replaces every bridge edge e_ij in a solution of a
// Theorem 1 gadget by one of its endpoints' set edges, implementing the
// proof's substitution step, and returns the selected set indices.
func Canonicalize(sets [][]int, setEdges []graph.EdgeID, chosen []graph.EdgeID, in *core.Instance) []int {
	isSet := make(map[graph.EdgeID]int, len(setEdges))
	for i, e := range setEdges {
		isSet[e] = i
	}
	onEdge := in.TrafficsOnEdge()
	var out []int
	seen := make(map[int]bool)
	for _, e := range chosen {
		if si, ok := isSet[e]; ok {
			if !seen[si] {
				seen[si] = true
				out = append(out, si)
			}
			continue
		}
		// Bridge edge: every traffic crossing it also crosses the set
		// edges on both sides; replace by the set covering the most
		// elements among those traffics.
		counts := make(map[int]int)
		for _, ti := range onEdge[e] {
			for _, si := range containingSets(sets, ti) {
				counts[si]++
			}
		}
		best, bestN := -1, -1
		for si, n := range counts {
			if n > bestN || (n == bestN && si < best) {
				best, bestN = si, n
			}
		}
		if best >= 0 && !seen[best] {
			seen[best] = true
			out = append(out, best)
		}
	}
	return out
}

func containingSets(sets [][]int, element int) []int {
	var out []int
	for si, s := range sets {
		for _, e := range s {
			if e == element {
				out = append(out, si)
				break
			}
		}
	}
	return out
}
