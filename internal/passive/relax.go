package passive

import (
	"context"

	"repro/internal/core"
)

// LinearRelaxation solves the LP relaxation of Linear program 2 (§4.3)
// — x_e relaxed to [0,1] — and returns its optimum: a lower bound on
// the PPM(k) device count every integral solver must respect. The
// metamorphic harness (internal/scenariotest) asserts
// ⌈LinearRelaxation⌉ ≤ ILP optimum ≤ greedy on every scenario family.
// It shares the model builder with RandomizedRounding's relaxation
// step, so the bound and the rounding heuristic can never diverge.
func LinearRelaxation(ctx context.Context, in *core.Instance, k float64) (float64, error) {
	checkK(k)
	if err := in.Validate(); err != nil {
		return 0, err
	}
	_, obj, err := lp2Relaxation(ctx, in, k)
	return obj, err
}
