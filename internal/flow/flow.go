// Package flow implements directed flow networks with real-valued
// capacities and costs: Dinic max-flow and successive-shortest-path
// min-cost flow with node potentials.
//
// The paper reduces Partial Passive Monitoring to Minimum Edge Cost Flow
// (§4.3, Theorem 2) and observes that the greedy heuristics correspond to
// a min-cost flow on the MECF graph with linear costs; it also notes that
// PPME*(x,h,k) — re-optimizing sampling rates with device placement
// frozen (§5.4) — "can be expressed as a minimum cost flow problem for
// which efficient polynomial time algorithms are available without the
// need of linear programming anymore". This package provides those
// polynomial algorithms.
package flow

import (
	"container/heap"
	"fmt"
	"math"
)

const eps = 1e-9

// Network is a directed flow network over nodes 0..n-1. Arcs are added
// with AddArc; parallel arcs and cycles are allowed.
type Network struct {
	n int
	// Arc storage in residual pairs: arc 2i is the forward arc, 2i+1 its
	// reverse. cap is the *residual* capacity during/after a run.
	to   []int
	head [][]int // head[v] = indices into to/cap/cost of arcs leaving v
	cap  []float64
	cost []float64
	orig []float64 // original capacity of forward arcs (by arc pair)
}

// Arc identifies an arc added with AddArc.
type Arc int

// NewNetwork returns a network with n nodes and no arcs.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("flow: non-positive node count %d", n))
	}
	return &Network{n: n, head: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (f *Network) NumNodes() int { return f.n }

// NumArcs returns the number of forward arcs.
func (f *Network) NumArcs() int { return len(f.to) / 2 }

// AddArc adds a directed arc from u to v with the given capacity and
// per-unit cost, returning its handle. Capacity may be math.Inf(1).
func (f *Network) AddArc(u, v int, capacity, cost float64) Arc {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic(fmt.Sprintf("flow: arc %d->%d out of range [0,%d)", u, v, f.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("flow: negative capacity %g", capacity))
	}
	id := len(f.to)
	f.to = append(f.to, v, u)
	f.cap = append(f.cap, capacity, 0)
	f.cost = append(f.cost, cost, -cost)
	f.head[u] = append(f.head[u], id)
	f.head[v] = append(f.head[v], id+1)
	f.orig = append(f.orig, capacity)
	return Arc(id / 2)
}

// Flow returns the flow currently carried by arc a (after a MaxFlow or
// MinCostFlow run).
func (f *Network) Flow(a Arc) float64 {
	i := int(a) * 2
	return f.cap[i+1] // reverse residual = pushed flow
}

// Reset zeroes all flow, restoring original capacities.
func (f *Network) Reset() {
	for i := range f.orig {
		f.cap[2*i] = f.orig[i]
		f.cap[2*i+1] = 0
	}
}

// MaxFlow runs Dinic's algorithm and returns the maximum s→t flow value.
// Arc flows are available through Flow afterwards.
func (f *Network) MaxFlow(s, t int) float64 {
	f.checkST(s, t)
	total := 0.0
	level := make([]int, f.n)
	iter := make([]int, f.n)
	for f.bfsLevel(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfsAugment(s, t, math.Inf(1), level, iter)
			if pushed <= eps {
				break
			}
			total += pushed
		}
	}
	return total
}

func (f *Network) checkST(s, t int) {
	if s < 0 || s >= f.n || t < 0 || t >= f.n || s == t {
		panic(fmt.Sprintf("flow: bad source/sink %d,%d", s, t))
	}
}

func (f *Network) bfsLevel(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range f.head[v] {
			if f.cap[id] > eps && level[f.to[id]] < 0 {
				level[f.to[id]] = level[v] + 1
				queue = append(queue, f.to[id])
			}
		}
	}
	return level[t] >= 0
}

func (f *Network) dfsAugment(v, t int, limit float64, level, iter []int) float64 {
	if v == t {
		return limit
	}
	for ; iter[v] < len(f.head[v]); iter[v]++ {
		id := f.head[v][iter[v]]
		w := f.to[id]
		if f.cap[id] <= eps || level[w] != level[v]+1 {
			continue
		}
		pushed := f.dfsAugment(w, t, math.Min(limit, f.cap[id]), level, iter)
		if pushed > eps {
			f.cap[id] -= pushed
			f.cap[id^1] += pushed
			return pushed
		}
	}
	return 0
}

// MinCostResult reports the outcome of MinCostFlow.
type MinCostResult struct {
	// Sent is the amount of flow actually routed (== requested amount
	// unless the network cannot carry it).
	Sent float64
	// Cost is the total cost of the routed flow.
	Cost float64
	// Full is true when the full requested amount was routed.
	Full bool
}

// MinCostFlow routes `amount` units from s to t at minimum total cost
// using successive shortest paths with Johnson potentials (Bellman–Ford
// initialization tolerates negative arc costs, as long as no negative
// cycle is reachable). Per-arc flows are available via Flow afterwards.
//
// If the network cannot carry the full amount, it routes as much as a
// max-flow allows and reports Full=false.
func (f *Network) MinCostFlow(s, t int, amount float64) MinCostResult {
	f.checkST(s, t)
	if amount < 0 {
		panic(fmt.Sprintf("flow: negative amount %g", amount))
	}
	pot := f.bellmanFord(s)
	res := MinCostResult{}
	dist := make([]float64, f.n)
	prevArc := make([]int, f.n)
	for res.Sent < amount-eps {
		if !f.dijkstraReduced(s, t, pot, dist, prevArc) {
			break // t unreachable in residual graph
		}
		// Update potentials.
		for v := 0; v < f.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := amount - res.Sent
		for v := t; v != s; {
			id := prevArc[v]
			if f.cap[id] < push {
				push = f.cap[id]
			}
			v = f.to[id^1]
		}
		for v := t; v != s; {
			id := prevArc[v]
			f.cap[id] -= push
			f.cap[id^1] += push
			res.Cost += push * f.cost[id]
			v = f.to[id^1]
		}
		res.Sent += push
	}
	res.Full = res.Sent >= amount-1e-6
	return res
}

// bellmanFord computes initial potentials (shortest distances by cost)
// from s over arcs with positive residual capacity. Unreachable nodes
// get potential 0; they can only become reachable later via paths whose
// reduced costs remain valid because every augmentation preserves
// eps-feasibility of the potentials we maintain.
func (f *Network) bellmanFord(s int) []float64 {
	dist := make([]float64, f.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	for round := 0; round < f.n; round++ {
		changed := false
		for v := 0; v < f.n; v++ {
			if math.IsInf(dist[v], 1) {
				continue
			}
			for _, id := range f.head[v] {
				if f.cap[id] <= eps {
					continue
				}
				w := f.to[id]
				nd := dist[v] + f.cost[id]
				if nd < dist[w]-eps {
					dist[w] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range dist {
		if math.IsInf(dist[i], 1) {
			dist[i] = 0
		}
	}
	return dist
}

type fpqItem struct {
	node int
	dist float64
}
type fpq []fpqItem

func (q fpq) Len() int            { return len(q) }
func (q fpq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q fpq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *fpq) Push(x interface{}) { *q = append(*q, x.(fpqItem)) }
func (q *fpq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstraReduced runs Dijkstra over reduced costs cost+pot[u]-pot[v] on
// the residual graph, filling dist and prevArc. It returns false when t
// is unreachable.
func (f *Network) dijkstraReduced(s, t int, pot, dist []float64, prevArc []int) bool {
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	dist[s] = 0
	q := &fpq{{node: s}}
	done := make([]bool, f.n)
	for q.Len() > 0 {
		it := heap.Pop(q).(fpqItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, id := range f.head[v] {
			if f.cap[id] <= eps {
				continue
			}
			w := f.to[id]
			rc := f.cost[id] + pot[v] - pot[w]
			if rc < -1e-6 {
				// Potentials should keep reduced costs non-negative up
				// to round-off; clamp small violations.
				rc = 0
			}
			nd := dist[v] + rc
			if nd < dist[w]-eps {
				dist[w] = nd
				prevArc[w] = id
				heap.Push(q, fpqItem{node: w, dist: nd})
			}
		}
	}
	return !math.IsInf(dist[t], 1)
}
