package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example with known max flow 23.
	f := NewNetwork(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	f.AddArc(s, v1, 16, 0)
	f.AddArc(s, v2, 13, 0)
	f.AddArc(v1, v2, 10, 0)
	f.AddArc(v2, v1, 4, 0)
	f.AddArc(v1, v3, 12, 0)
	f.AddArc(v3, v2, 9, 0)
	f.AddArc(v2, v4, 14, 0)
	f.AddArc(v4, v3, 7, 0)
	f.AddArc(v3, tt, 20, 0)
	f.AddArc(v4, tt, 4, 0)
	if got := f.MaxFlow(s, tt); !almostEq(got, 23, 1e-9) {
		t.Fatalf("max flow = %g, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewNetwork(3)
	f.AddArc(0, 1, 5, 0)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Fatalf("max flow = %g, want 0", got)
	}
}

func TestMaxFlowParallelArcs(t *testing.T) {
	f := NewNetwork(2)
	f.AddArc(0, 1, 3, 0)
	f.AddArc(0, 1, 4, 0)
	if got := f.MaxFlow(0, 1); !almostEq(got, 7, 1e-9) {
		t.Fatalf("max flow = %g, want 7", got)
	}
}

func TestMinCostFlowSimple(t *testing.T) {
	// Two routes: direct cost 3 cap 2, detour cost 1+1 cap 2 each.
	f := NewNetwork(3)
	direct := f.AddArc(0, 2, 2, 3)
	a := f.AddArc(0, 1, 2, 1)
	b := f.AddArc(1, 2, 2, 1)
	res := f.MinCostFlow(0, 2, 3)
	if !res.Full || !almostEq(res.Sent, 3, 1e-9) {
		t.Fatalf("sent = %g full=%v, want 3", res.Sent, res.Full)
	}
	// Cheapest: 2 units over the detour (cost 4) + 1 direct (3) = 7.
	if !almostEq(res.Cost, 7, 1e-9) {
		t.Fatalf("cost = %g, want 7", res.Cost)
	}
	if !almostEq(f.Flow(direct), 1, 1e-9) || !almostEq(f.Flow(a), 2, 1e-9) || !almostEq(f.Flow(b), 2, 1e-9) {
		t.Fatalf("arc flows = %g,%g,%g", f.Flow(direct), f.Flow(a), f.Flow(b))
	}
}

func TestMinCostFlowPartial(t *testing.T) {
	f := NewNetwork(2)
	f.AddArc(0, 1, 5, 2)
	res := f.MinCostFlow(0, 1, 8)
	if res.Full {
		t.Fatal("claims full despite capacity 5 < request 8")
	}
	if !almostEq(res.Sent, 5, 1e-9) || !almostEq(res.Cost, 10, 1e-9) {
		t.Fatalf("sent=%g cost=%g, want 5, 10", res.Sent, res.Cost)
	}
}

func TestMinCostFlowZeroAmount(t *testing.T) {
	f := NewNetwork(2)
	f.AddArc(0, 1, 5, 2)
	res := f.MinCostFlow(0, 1, 0)
	if !res.Full || res.Sent != 0 || res.Cost != 0 {
		t.Fatalf("zero request: %+v", res)
	}
}

func TestMinCostFlowInfiniteCapacity(t *testing.T) {
	f := NewNetwork(3)
	f.AddArc(0, 1, math.Inf(1), 1)
	f.AddArc(1, 2, math.Inf(1), 0)
	res := f.MinCostFlow(0, 2, 42)
	if !res.Full || !almostEq(res.Cost, 42, 1e-9) {
		t.Fatalf("inf capacity: %+v", res)
	}
}

func TestMinCostPrefersCheapRoute(t *testing.T) {
	// The expensive route must only be used after the cheap one fills.
	f := NewNetwork(4)
	cheap1 := f.AddArc(0, 1, 1, 0)
	cheap2 := f.AddArc(1, 3, 1, 0)
	exp1 := f.AddArc(0, 2, 10, 5)
	exp2 := f.AddArc(2, 3, 10, 5)
	res := f.MinCostFlow(0, 3, 1)
	if !almostEq(res.Cost, 0, 1e-9) {
		t.Fatalf("cost=%g, want 0 via cheap route", res.Cost)
	}
	if !almostEq(f.Flow(cheap1), 1, 1e-9) || !almostEq(f.Flow(cheap2), 1, 1e-9) ||
		f.Flow(exp1) > 1e-9 || f.Flow(exp2) > 1e-9 {
		t.Fatal("flow did not take the cheap route")
	}
}

func TestReset(t *testing.T) {
	f := NewNetwork(2)
	a := f.AddArc(0, 1, 5, 1)
	f.MinCostFlow(0, 1, 5)
	if !almostEq(f.Flow(a), 5, 1e-9) {
		t.Fatalf("flow=%g, want 5", f.Flow(a))
	}
	f.Reset()
	if f.Flow(a) != 0 {
		t.Fatalf("after Reset flow=%g, want 0", f.Flow(a))
	}
	res := f.MinCostFlow(0, 1, 3)
	if !almostEq(res.Sent, 3, 1e-9) {
		t.Fatalf("re-run sent=%g, want 3", res.Sent)
	}
}

func TestNegativeCostArc(t *testing.T) {
	// Bellman–Ford initialization must handle negative costs.
	f := NewNetwork(3)
	f.AddArc(0, 1, 2, -3)
	f.AddArc(1, 2, 2, 1)
	f.AddArc(0, 2, 2, 0)
	res := f.MinCostFlow(0, 2, 2)
	if !res.Full || !almostEq(res.Cost, -4, 1e-9) {
		t.Fatalf("cost=%g full=%v, want -4 (via negative arc)", res.Cost, res.Full)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero nodes":    func() { NewNetwork(0) },
		"bad arc":       func() { NewNetwork(2).AddArc(0, 5, 1, 0) },
		"neg capacity":  func() { NewNetwork(2).AddArc(0, 1, -1, 0) },
		"same st":       func() { NewNetwork(2).MaxFlow(1, 1) },
		"neg amount":    func() { n := NewNetwork(2); n.AddArc(0, 1, 1, 0); n.MinCostFlow(0, 1, -2) },
		"st out of rng": func() { NewNetwork(2).MaxFlow(0, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// lpMinCostFlow solves the identical min-cost flow instance as an LP,
// giving an independent reference implementation.
func lpMinCostFlow(n int, arcs [][4]float64, s, t int, amount float64) (cost float64, feasible bool) {
	p := lp.NewProblem(lp.Minimize)
	vars := make([]lp.Var, len(arcs))
	for i, a := range arcs {
		vars[i] = p.AddVariable("f", 0, a[2], a[3])
	}
	// Flow conservation with net supply at s and demand at t.
	for v := 0; v < n; v++ {
		var terms []lp.Term
		for i, a := range arcs {
			if int(a[0]) == v {
				terms = append(terms, lp.Term{Var: vars[i], Coef: 1})
			}
			if int(a[1]) == v {
				terms = append(terms, lp.Term{Var: vars[i], Coef: -1})
			}
		}
		rhs := 0.0
		if v == s {
			rhs = amount
		} else if v == t {
			rhs = -amount
		}
		if len(terms) == 0 && rhs != 0 {
			return 0, false
		}
		if len(terms) > 0 {
			p.AddConstraint(lp.EQ, rhs, terms...)
		}
	}
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return 0, false
	}
	return sol.Objective, true
}

// Property: successive-shortest-paths matches the LP on random networks
// with non-negative costs.
func TestMinCostFlowMatchesLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		nArcs := n + rng.Intn(2*n)
		arcs := make([][4]float64, 0, nArcs)
		net := NewNetwork(n)
		for i := 0; i < nArcs; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			c := float64(1 + rng.Intn(9))
			w := float64(rng.Intn(6))
			arcs = append(arcs, [4]float64{float64(u), float64(v), c, w})
			net.AddArc(u, v, c, w)
		}
		s, tt := 0, n-1
		// Request at most the max-flow so the LP stays feasible.
		probe := NewNetwork(n)
		for _, a := range arcs {
			probe.AddArc(int(a[0]), int(a[1]), a[2], a[3])
		}
		mf := probe.MaxFlow(s, tt)
		if mf < 1 {
			return true
		}
		amount := math.Floor(mf * (0.3 + 0.7*rng.Float64()))
		if amount < 1 {
			amount = 1
		}
		res := net.MinCostFlow(s, tt, amount)
		want, ok := lpMinCostFlow(n, arcs, s, tt, amount)
		if !ok {
			t.Logf("seed %d: LP reference failed", seed)
			return false
		}
		if !res.Full {
			t.Logf("seed %d: flow not full though amount <= maxflow", seed)
			return false
		}
		if !almostEq(res.Cost, want, 1e-5*(1+math.Abs(want))) {
			t.Logf("seed %d: flow=%g lp=%g", seed, res.Cost, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxFlow equals the LP max-flow value.
func TestMaxFlowMatchesLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		net := NewNetwork(n)
		p := lp.NewProblem(lp.Maximize)
		type arc struct {
			u, v int
			x    lp.Var
		}
		var arcs []arc
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := float64(1 + rng.Intn(9))
			net.AddArc(u, v, c, 0)
			arcs = append(arcs, arc{u, v, p.AddVariable("f", 0, c, 0)})
		}
		if len(arcs) == 0 {
			return true
		}
		s, tt := 0, n-1
		// Conservation at internal nodes; objective = net outflow of s.
		for v := 0; v < n; v++ {
			if v == s || v == tt {
				continue
			}
			var terms []lp.Term
			for _, a := range arcs {
				if a.u == v {
					terms = append(terms, lp.Term{Var: a.x, Coef: 1})
				}
				if a.v == v {
					terms = append(terms, lp.Term{Var: a.x, Coef: -1})
				}
			}
			if len(terms) > 0 {
				p.AddConstraint(lp.EQ, 0, terms...)
			}
		}
		for _, a := range arcs {
			coef := 0.0
			if a.u == s {
				coef += 1
			}
			if a.v == s {
				coef -= 1
			}
			if coef != 0 {
				p.SetCost(a.x, coef)
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			t.Logf("seed %d: LP failed: %v", seed, err)
			return false
		}
		got := net.MaxFlow(s, tt)
		if !almostEq(got, sol.Objective, 1e-5*(1+sol.Objective)) {
			t.Logf("seed %d: dinic=%g lp=%g", seed, got, sol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
