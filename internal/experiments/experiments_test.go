package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestFig7ShapeOneSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	s := Fig7(context.Background(), 1)
	// The monotone staircase of Figure 7: more coverage, more devices.
	prevG, prevI := 0.0, 0.0
	for _, x := range s.Xs() {
		g := s.MeanAt(x, "Greedy algorithm")
		il := s.MeanAt(x, "ILP")
		if math.IsNaN(g) || math.IsNaN(il) {
			t.Fatalf("missing data at %g", x)
		}
		if il > g {
			t.Fatalf("at %g%%: ILP %g above greedy %g", x, il, g)
		}
		if g < prevG-1e-9 || il < prevI-1e-9 {
			t.Fatalf("device counts not monotone at %g%%", x)
		}
		prevG, prevI = g, il
	}
	// The paper's headline: the 95→100% step is the steepest of the
	// sweep for the ILP.
	steps := map[float64]float64{}
	xs := s.Xs()
	for i := 1; i < len(xs); i++ {
		steps[xs[i]] = s.MeanAt(xs[i], "ILP") - s.MeanAt(xs[i-1], "ILP")
	}
	last := steps[100]
	for x, d := range steps {
		if x != 100 && d > last {
			t.Fatalf("step at %g%% (%g) exceeds the final step (%g)", x, d, last)
		}
	}
}

func TestBeaconPlacementOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	cfg := topology.Config{Routers: 10, InterRouterLinks: 18, Endpoints: 6}
	s := BeaconPlacement(context.Background(), cfg, "test", 2, []int{4, 8, 10})
	for _, x := range s.Xs() {
		il := s.MeanAt(x, "ILP")
		th := s.MeanAt(x, "Thiran")
		gr := s.MeanAt(x, "Greedy")
		if il > th+1e-9 || il > gr+1e-9 {
			t.Fatalf("|V_B|=%g: ILP %g not the minimum (thiran %g, greedy %g)", x, il, th, gr)
		}
	}
}

func TestFig6Writes(t *testing.T) {
	var text, dot strings.Builder
	if err := Fig6(1, &text, &dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "% of load") {
		t.Fatalf("text output missing table:\n%s", text.String())
	}
	if !strings.Contains(dot.String(), "penwidth") {
		t.Fatal("DOT output missing load widths")
	}
	// Non-uniformity: some link must carry well above the mean share.
	if !strings.Contains(text.String(), "Figure 6") {
		t.Fatal("missing title")
	}
}

func TestPPMECostRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	s := PPMECost(context.Background(), 1)
	for _, x := range s.Xs() {
		ppme := s.MeanAt(x, "PPME cost")
		full := s.MeanAt(x, "PPM full-rate cost")
		if math.IsNaN(ppme) || math.IsNaN(full) {
			t.Fatalf("missing data at %g", x)
		}
		// PPME optimizes the same coverage with rate freedom: it can
		// never cost more than the full-rate PPM placement.
		if ppme > full+1e-6 {
			t.Fatalf("at %g%%: PPME %g costs more than full-rate PPM %g", x, ppme, full)
		}
	}
}

func TestDynamicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	res, err := Dynamic(context.Background(), 1, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.FinalCoverage <= 0 || res.FinalCoverage > 1 {
		t.Fatalf("final coverage = %g", res.FinalCoverage)
	}
}

func TestReplayCheckCloseToPromise(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	prom, ach, err := ReplayCheck(context.Background(), 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if prom < 0.9-1e-6 {
		t.Fatalf("promise %g below k", prom)
	}
	if math.Abs(prom-ach) > 0.03 {
		t.Fatalf("achieved %g far from promised %g", ach, prom)
	}
}
