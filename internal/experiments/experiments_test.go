package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/topology"
)

// writeSeries renders a series for byte-comparison.
func writeSeries(t *testing.T, s *stats.Series) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The acceptance bar of the engine refactor: for every figure family,
// a parallel run merges to a byte-identical series. These tests use
// compact instances so they also run in -short CI (and under -race,
// where they double as the data-race probe for the solver hot paths).

func TestEngineDeterminismPassive(t *testing.T) {
	cfg := topology.Config{Routers: 8, InterRouterLinks: 13, Endpoints: 6}
	serial := PassivePlacementOn(context.Background(), engine.Serial(), cfg, "det", 3, 0)
	want := writeSeries(t, serial)
	for _, workers := range []int{4, 16} {
		eng := engine.New(engine.Options{Workers: workers, Cache: engine.NewCache()})
		got := writeSeries(t, PassivePlacementOn(context.Background(), eng, cfg, "det", 3, 0))
		if got != want {
			t.Fatalf("workers=%d differs from serial:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

func TestEngineDeterminismBeacon(t *testing.T) {
	cfg := topology.Config{Routers: 10, InterRouterLinks: 18, Endpoints: 6}
	sweep := []int{4, 8, 10}
	serial := BeaconPlacementOn(context.Background(), engine.Serial(), cfg, "det", 2, sweep)
	want := writeSeries(t, serial)
	eng := engine.New(engine.Options{Workers: 8, Cache: engine.NewCache()})
	got := writeSeries(t, BeaconPlacementOn(context.Background(), eng, cfg, "det", 2, sweep))
	if got != want {
		t.Fatalf("parallel beacon run differs from serial:\n%s\nwant:\n%s", got, want)
	}
}

func TestEngineDeterminismSamplerBias(t *testing.T) {
	want := writeSeries(t, SamplerBiasOn(context.Background(), engine.Serial(), 1))
	got := writeSeries(t, SamplerBiasOn(context.Background(), NewRunner(), 1))
	if got != want {
		t.Fatalf("parallel sampler-bias run differs from serial:\n%s\nwant:\n%s", got, want)
	}
}

func TestEngineCacheCounting(t *testing.T) {
	cfg := topology.Config{Routers: 8, InterRouterLinks: 13, Endpoints: 6}
	const seeds = 2
	cache := engine.NewCache()
	eng := engine.New(engine.Options{Workers: 8, Cache: cache})
	first := writeSeries(t, PassivePlacementOn(context.Background(), eng, cfg, "cache", seeds, 0))
	hits, misses := cache.Counts()
	// Per seed: one instance build (1 miss + len(KSweep)-1 hits) and
	// len(KSweep) distinct exact solves (all misses).
	wantHits, wantMisses := int64(seeds*(len(KSweep)-1)), int64(seeds*(1+len(KSweep)))
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("first run: hits/misses = %d/%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
	// A second identical sweep on the same runner is served entirely
	// from the cache — and still renders identically.
	second := writeSeries(t, PassivePlacementOn(context.Background(), eng, cfg, "cache", seeds, 0))
	if second != first {
		t.Fatal("cached rerun differs from computed run")
	}
	hits2, misses2 := cache.Counts()
	if misses2 != wantMisses {
		t.Fatalf("rerun recomputed: misses %d -> %d", misses, misses2)
	}
	if want := hits + int64(seeds*2*len(KSweep)); hits2 != want {
		t.Fatalf("rerun hits = %d, want %d", hits2, want)
	}
	if eng.Stats().Nodes <= 0 {
		t.Fatal("engine did not aggregate solve stats")
	}
}

func TestDynamicAndReplayBatchSeedOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	eng := NewRunner()
	outs, err := ReplayBatch(context.Background(), eng, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Seed != int64(i) {
			t.Fatalf("outcome %d carries seed %d", i, o.Seed)
		}
		prom, ach, err := ReplayCheck(context.Background(), int64(i), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if o.Promised != prom || o.Achieved != ach {
			t.Fatalf("seed %d: batch (%g,%g) != serial (%g,%g)", i, o.Promised, o.Achieved, prom, ach)
		}
	}
	dyn, err := DynamicBatch(context.Background(), eng, 2, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 2 {
		t.Fatalf("got %d dynamic results", len(dyn))
	}
	for i, d := range dyn {
		ref, err := Dynamic(context.Background(), int64(i), 3, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if d.Rounds != ref.Rounds || d.Recomputes != ref.Recomputes ||
			d.MinCoverage != ref.MinCoverage || d.FinalCoverage != ref.FinalCoverage {
			t.Fatalf("seed %d: batch %+v != serial %+v", i, d, ref)
		}
	}
}

func TestFig7ShapeOneSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	s := Fig7(context.Background(), 1)
	// The monotone staircase of Figure 7: more coverage, more devices.
	prevG, prevI := 0.0, 0.0
	for _, x := range s.Xs() {
		g := s.MeanAt(x, "Greedy algorithm")
		il := s.MeanAt(x, "ILP")
		if math.IsNaN(g) || math.IsNaN(il) {
			t.Fatalf("missing data at %g", x)
		}
		if il > g {
			t.Fatalf("at %g%%: ILP %g above greedy %g", x, il, g)
		}
		if g < prevG-1e-9 || il < prevI-1e-9 {
			t.Fatalf("device counts not monotone at %g%%", x)
		}
		prevG, prevI = g, il
	}
	// The paper's headline: the 95→100% step is the steepest of the
	// sweep for the ILP.
	steps := map[float64]float64{}
	xs := s.Xs()
	for i := 1; i < len(xs); i++ {
		steps[xs[i]] = s.MeanAt(xs[i], "ILP") - s.MeanAt(xs[i-1], "ILP")
	}
	last := steps[100]
	//placevet:ignore maporder -- order-free assertion: every entry is checked against the same bound
	for x, d := range steps {
		if x != 100 && d > last {
			t.Fatalf("step at %g%% (%g) exceeds the final step (%g)", x, d, last)
		}
	}
}

func TestBeaconPlacementOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	cfg := topology.Config{Routers: 10, InterRouterLinks: 18, Endpoints: 6}
	s := BeaconPlacement(context.Background(), cfg, "test", 2, []int{4, 8, 10})
	for _, x := range s.Xs() {
		il := s.MeanAt(x, "ILP")
		th := s.MeanAt(x, "Thiran")
		gr := s.MeanAt(x, "Greedy")
		if il > th+1e-9 || il > gr+1e-9 {
			t.Fatalf("|V_B|=%g: ILP %g not the minimum (thiran %g, greedy %g)", x, il, th, gr)
		}
	}
}

func TestFig6Writes(t *testing.T) {
	var text, dot strings.Builder
	if err := Fig6(1, &text, &dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "% of load") {
		t.Fatalf("text output missing table:\n%s", text.String())
	}
	if !strings.Contains(dot.String(), "penwidth") {
		t.Fatal("DOT output missing load widths")
	}
	// Non-uniformity: some link must carry well above the mean share.
	if !strings.Contains(text.String(), "Figure 6") {
		t.Fatal("missing title")
	}
}

func TestPPMECostRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	s := PPMECost(context.Background(), 1)
	for _, x := range s.Xs() {
		ppme := s.MeanAt(x, "PPME cost")
		full := s.MeanAt(x, "PPM full-rate cost")
		if math.IsNaN(ppme) || math.IsNaN(full) {
			t.Fatalf("missing data at %g", x)
		}
		// PPME optimizes the same coverage with rate freedom: it can
		// never cost more than the full-rate PPM placement.
		if ppme > full+1e-6 {
			t.Fatalf("at %g%%: PPME %g costs more than full-rate PPM %g", x, ppme, full)
		}
	}
}

func TestDynamicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	res, err := Dynamic(context.Background(), 1, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.FinalCoverage <= 0 || res.FinalCoverage > 1 {
		t.Fatalf("final coverage = %g", res.FinalCoverage)
	}
}

func TestReplayCheckCloseToPromise(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run in -short mode")
	}
	prom, ach, err := ReplayCheck(context.Background(), 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if prom < 0.9-1e-6 {
		t.Fatalf("promise %g below k", prom)
	}
	if math.Abs(prom-ach) > 0.03 {
		t.Fatalf("achieved %g far from promised %g", ach, prom)
	}
}
