// Package experiments regenerates every figure of the paper's
// evaluation. Each function reproduces one figure as a stats.Series
// (the textual equivalent of the plot) averaged over `seeds` runs, as
// the paper averages over 20 simulations. cmd/repro prints them;
// bench_test.go at the module root times them; EXPERIMENTS.md records
// paper-versus-measured shapes.
//
// Since the engine refactor every multi-seed figure fans its
// seed × sweep-point cells out on an internal/engine runner: cells run
// concurrently on a bounded worker pool, instances and exact solves are
// memoized behind canonical keys, and results are merged in canonical
// serial order, so the series are byte-identical whatever the worker
// count. The legacy one-argument entry points (Fig7, Fig8, …) run on a
// fresh default runner (GOMAXPROCS workers, per-call cache); the *On
// variants accept a caller-managed runner so the CLI and benchmarks can
// control parallelism and share caches across figures.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/passive"
	"repro/internal/sampling"
	"repro/internal/simulate"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// DefaultSeeds is the paper's run count per point ("all the results are
// an average over 20 simulations").
const DefaultSeeds = 20

// KSweep is the x axis of Figures 7 and 8 (percentage of monitored
// traffic, starting from 75%).
var KSweep = []float64{0.75, 0.80, 0.85, 0.90, 0.95, 1.00}

// NewRunner builds the default figure engine: GOMAXPROCS workers and a
// fresh memoizing cache. The legacy entry points call it per figure so
// repeated benchmark iterations stay honest (no cross-call memoization).
func NewRunner() *engine.Runner {
	return engine.New(engine.Options{Cache: engine.NewCache()})
}

// cached memoizes compute under the runner's cache with a typed
// result — for ctx-independent builds (instances, routed traffic).
func cached[T any](eng *engine.Runner, key string, compute func() T) T {
	v, _ := eng.Cached(key, func() (any, error) { return compute(), nil })
	return v.(T)
}

// cachedSolve memoizes a ctx-consulting solve: if ctx fires mid-solve
// the degraded incumbent is returned but not retained, so a later
// unhurried run on the same runner re-solves instead of silently
// serving stale incumbents.
func cachedSolve[T any](ctx context.Context, eng *engine.Runner, key string, compute func() T) T {
	v, _ := eng.CachedUnlessCanceled(ctx, key, func() (any, error) { return compute(), nil })
	return v.(T)
}

// runSweep fans the seed × point grid of one figure out on eng and
// merges the per-cell samples into s in canonical serial order
// (seed-major, point-minor) — the order the historical seed loops used —
// so the rendered series is bit-identical for any worker count. A cell
// may return no samples (a skipped sweep point); cells leave
// Sample.Rank zero — runSweep stamps every sample with its cell's task
// index, the canonical merge position.
func runSweep(ctx context.Context, eng *engine.Runner, s *stats.Series, seeds, points int, cell func(ctx context.Context, seed, point int) []stats.Sample) {
	results, err := engine.Map(ctx, eng, seeds*points, func(ctx context.Context, i int) ([]stats.Sample, error) {
		return cell(ctx, i/points, i%points), nil
	})
	if err != nil {
		// Cells report failures by panicking (as the historical serial
		// loops did); Map errors cannot happen here.
		panic(fmt.Sprintf("experiments: %v", err))
	}
	for i, ss := range results {
		for j := range ss {
			ss[j].Rank = i
		}
		s.AddSamples(ss...)
	}
}

// instance builds the POP + routed traffic of one run.
func instance(cfg topology.Config, seed int64) *core.Instance {
	cfg.Seed = seed
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	in, err := traffic.Route(pop, demands)
	if err != nil {
		panic(fmt.Sprintf("experiments: routing: %v", err))
	}
	return in
}

// cachedInstance memoizes instance construction per (cfg, seed): every
// sweep-point cell of the same seed shares one build.
func cachedInstance(eng *engine.Runner, cfg topology.Config, seed int64) *core.Instance {
	key := engine.MustKey("experiments/instance", nil, cfg, seed)
	return cached(eng, key, func() *core.Instance { return instance(cfg, seed) })
}

// PassivePlacement reproduces Figures 7 and 8: device counts of the
// load-order greedy versus the exact optimum (the paper's ILP curve)
// across the monitored-traffic sweep, averaged over seeds runs.
//
// The exact column is computed with the combinatorial branch-and-bound
// (Theorem 1 view), which provably returns the same optima as the
// paper's CPLEX-solved MIP — internal/passive's tests cross-check the
// two on smaller instances.
func PassivePlacement(ctx context.Context, cfg topology.Config, figure string, seeds, maxNodes int) *stats.Series {
	return PassivePlacementOn(ctx, NewRunner(), cfg, figure, seeds, maxNodes)
}

// PassivePlacementOn is PassivePlacement on a caller-managed engine.
func PassivePlacementOn(ctx context.Context, eng *engine.Runner, cfg topology.Config, figure string, seeds, maxNodes int) *stats.Series {
	s := stats.NewSeries(
		figure+": passive monitoring devices placement",
		"% monitored", "number of monitoring devices",
		"Greedy algorithm", "ILP",
	)
	runSweep(ctx, eng, s, seeds, len(KSweep), func(ctx context.Context, seed, point int) []stats.Sample {
		in := cachedInstance(eng, cfg, int64(seed))
		k := KSweep[point]
		g := passive.GreedyLoad(in, k)
		ex := cachedSolve(ctx, eng, engine.MustKey("tap/exact", in, k, maxNodes), func() passive.Placement {
			pl := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: maxNodes, Workers: eng.Workers()})
			eng.AddStats(pl.Stats)
			return pl
		})
		x := k * 100
		return []stats.Sample{
			{X: x, Column: "Greedy algorithm", Value: float64(g.Devices())},
			{X: x, Column: "ILP", Value: float64(ex.Devices())},
		}
	})
	return s
}

// Fig7 is the 10-router POP of Figure 7 (27 links, 132 traffics).
func Fig7(ctx context.Context, seeds int) *stats.Series { return Fig7On(ctx, NewRunner(), seeds) }

// Fig7On is Fig7 on a caller-managed engine.
func Fig7On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	return PassivePlacementOn(ctx, eng, topology.Paper10, "Figure 7 (10-router POP)", seeds, 0)
}

// Fig8 is the 15-router POP of Figure 8 (71 links, 1980 traffics).
// Fig8 caps the branch-and-bound at 100k nodes per point: the k = 95%
// and 100% points of this instance are hard for our solver (CPLEX
// closes them; see EXPERIMENTS.md); the returned incumbents are upper
// bounds within ~1 device of optimal and preserve the figure's shape.
// The budget was retuned from 400k after the search was strengthened
// (presolve, dominance, Lagrangian duals): across a 20-seed sweep of
// all six k points, 100k reproduces the 400k incumbents at 118 of 120
// points — the two exceptions (seed 9 k=0.95, seed 13 k=1.00) sit one
// device higher, and the larger budget only ever held incumbents
// there, not optimality proofs — at a quarter of the node cost.
func Fig8(ctx context.Context, seeds int) *stats.Series { return Fig8On(ctx, NewRunner(), seeds) }

// Fig8On is Fig8 on a caller-managed engine.
func Fig8On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	return PassivePlacementOn(ctx, eng, topology.Paper15, "Figure 8 (15-router POP)", seeds, 100_000)
}

// beaconSeed is the pre-drawn scenario of one seed of a beacon figure:
// the POP and the per-sweep-point candidate sets. Candidate draws
// consume a sequential per-seed rand stream, so they are generated
// serially up front and only the solves fan out.
type beaconSeed struct {
	pop   *topology.POP
	cands [][]graph.NodeID // indexed by sweep point; nil = skipped
}

// BeaconPlacement reproduces Figures 9–11: beacons selected by the
// algorithm of [15] (Thiran), the paper's greedy, and the exact ILP, as
// the candidate set V_B grows. Candidates are random router subsets,
// re-drawn per seed.
func BeaconPlacement(ctx context.Context, cfg topology.Config, figure string, seeds int, vbSweep []int) *stats.Series {
	return BeaconPlacementOn(ctx, NewRunner(), cfg, figure, seeds, vbSweep)
}

// BeaconPlacementOn is BeaconPlacement on a caller-managed engine.
func BeaconPlacementOn(ctx context.Context, eng *engine.Runner, cfg topology.Config, figure string, seeds int, vbSweep []int) *stats.Series {
	s := stats.NewSeries(
		figure+": active monitoring beacons placement",
		"selectable beacons", "number of beacons selected",
		"Thiran", "Greedy", "ILP",
	)
	scenarios := make([]beaconSeed, seeds)
	for seed := 0; seed < seeds; seed++ {
		cfg := cfg
		cfg.Seed = int64(seed)
		pop := topology.Generate(cfg)
		routers := routerIDs(pop)
		rng := rand.New(rand.NewSource(int64(seed) * 7919))
		sc := beaconSeed{pop: pop, cands: make([][]graph.NodeID, len(vbSweep))}
		for vi, nb := range vbSweep {
			if nb > len(routers) {
				continue
			}
			sc.cands[vi] = sampleNodes(rng, routers, nb)
		}
		scenarios[seed] = sc
	}
	runSweep(ctx, eng, s, seeds, len(vbSweep), func(ctx context.Context, seed, point int) []stats.Sample {
		sc := scenarios[seed]
		cands := sc.cands[point]
		if cands == nil {
			return nil
		}
		// The |V_B| sweep re-draws candidates from one per-seed router
		// pool, so sweep points recompute mostly-overlapping shortest-
		// path trees; memoizing per (figure, seed, router) computes each
		// tree once per seed. The trees are shared read-only
		// (ComputeProbesTrees clones paths before mutating).
		treeOf := func(u graph.NodeID) map[graph.NodeID]graph.Path {
			key := engine.MustKey("active/sptree", nil, figure, seed, int(u))
			return cached(eng, key, func() map[graph.NodeID]graph.Path {
				return sc.pop.G.ShortestPaths(u)
			})
		}
		ps, err := active.ComputeProbesTrees(sc.pop.G, cands, treeOf)
		if err != nil {
			panic(fmt.Sprintf("experiments: probes: %v", err))
		}
		th, err := active.PlaceThiran(ps)
		if err != nil {
			panic(err)
		}
		gr, err := active.PlaceGreedy(ps)
		if err != nil {
			panic(err)
		}
		il := cachedSolve(ctx, eng, engine.MustKey("beacon/ilp", ps), func() active.Placement {
			pl, err := active.PlaceILP(ctx, ps)
			if err != nil {
				panic(err)
			}
			eng.AddStats(pl.Stats)
			return pl
		})
		x := float64(vbSweep[point])
		return []stats.Sample{
			{X: x, Column: "Thiran", Value: float64(th.Devices())},
			{X: x, Column: "Greedy", Value: float64(gr.Devices())},
			{X: x, Column: "ILP", Value: float64(il.Devices())},
		}
	})
	return s
}

func routerIDs(pop *topology.POP) []graph.NodeID {
	out := append([]graph.NodeID(nil), pop.Backbone...)
	return append(out, pop.Access...)
}

func sampleNodes(rng *rand.Rand, from []graph.NodeID, n int) []graph.NodeID {
	perm := rng.Perm(len(from))
	out := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = from[perm[i]]
	}
	return out
}

// vbSweep returns 2,4,...,max (the paper sweeps |V_B| up to the router
// count).
func vbSweep(max int) []int {
	var out []int
	for nb := 2; nb <= max; nb += 2 {
		out = append(out, nb)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Fig9 is the 15-router beacon experiment of Figure 9.
func Fig9(ctx context.Context, seeds int) *stats.Series { return Fig9On(ctx, NewRunner(), seeds) }

// Fig9On is Fig9 on a caller-managed engine.
func Fig9On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	return BeaconPlacementOn(ctx, eng, topology.Paper15, "Figure 9 (15-router POP)", seeds, vbSweep(15))
}

// Fig10 is the 29-router beacon experiment of Figure 10.
func Fig10(ctx context.Context, seeds int) *stats.Series { return Fig10On(ctx, NewRunner(), seeds) }

// Fig10On is Fig10 on a caller-managed engine.
func Fig10On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	return BeaconPlacementOn(ctx, eng, topology.Paper29, "Figure 10 (29-router POP)", seeds, vbSweep(29))
}

// Fig11 is the 80-router beacon experiment of Figure 11.
func Fig11(ctx context.Context, seeds int) *stats.Series { return Fig11On(ctx, NewRunner(), seeds) }

// Fig11On is Fig11 on a caller-managed engine.
func Fig11On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	return BeaconPlacementOn(ctx, eng, topology.Paper80, "Figure 11 (80-router POP)", seeds, vbSweep(80))
}

// Large150 is the paper's §7 outlook ("we are also currently testing
// our solution on larger POPs, with at least 150 routers"): the beacon
// comparison on a 150-router POP, sweeping a coarse candidate grid.
func Large150(ctx context.Context, seeds int) *stats.Series {
	return Large150On(ctx, NewRunner(), seeds)
}

// Large150On is Large150 on a caller-managed engine.
func Large150On(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	cfg := topology.Config{Routers: 150, InterRouterLinks: 280, Endpoints: 80}
	return BeaconPlacementOn(ctx, eng, cfg, "§7 outlook (150-router POP)", seeds, []int{10, 30, 60, 90, 120, 150})
}

// Fig6 reproduces Figure 6: the non-uniform traffic weight over a
// simple POP. It writes the per-link load shares as text and optionally
// the DOT rendering (edge thickness ∝ load share, as in the paper's
// figure). Fig6 is a single deterministic render with no seed loop, so
// it does not fan out on the engine.
func Fig6(seed int64, text io.Writer, dot io.Writer) error {
	cfg := topology.Config{Routers: 6, InterRouterLinks: 9, Endpoints: 6, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	in, err := traffic.Route(pop, demands)
	if err != nil {
		return err
	}
	loads := in.EdgeLoads()
	total := 0.0
	for _, l := range loads {
		total += l
	}
	fmt.Fprintf(text, "# Figure 6: traffic weight on a simple POP (seed %d)\n", seed)
	fmt.Fprintf(text, "# %d routers, %d endpoints, %d links; non-uniform matrix with preferred pairs\n",
		pop.Routers(), len(pop.Endpoints), pop.G.NumEdges())
	fmt.Fprintf(text, "%-8s %-14s %-14s %10s\n", "link", "from", "to", "% of load")
	for e, l := range loads {
		edge := pop.G.Edge(graph.EdgeID(e))
		fmt.Fprintf(text, "%-8d %-14s %-14s %9.2f%%\n",
			e, pop.G.Label(edge.U), pop.G.Label(edge.V), 100*l/total)
	}
	if dot != nil {
		maxLoad := stats.Max(loads)
		return pop.G.WriteDOT(dot, graph.DOTOptions{
			Name: "fig6",
			EdgeWidth: func(e graph.Edge) float64 {
				if maxLoad == 0 {
					return 1
				}
				return 0.5 + 4*loads[e.ID]/maxLoad
			},
			NodeShape: func(n graph.NodeID) string {
				switch pop.Kind[n] {
				case topology.Backbone:
					return "box"
				case topology.Access:
					return "ellipse"
				default:
					return "point"
				}
			},
		})
	}
	return nil
}

// ppmeKSweep is the coverage sweep of the §5 cost experiment.
var ppmeKSweep = []float64{0.75, 0.85, 0.95}

// cachedMulti memoizes the 2-route multi-instance build of one
// (cfg, seed) — the §5 experiments' input.
func cachedMulti(eng *engine.Runner, cfg topology.Config, seed int64) *core.MultiInstance {
	key := engine.MustKey("experiments/multi", nil, cfg, seed, 2)
	return cached(eng, key, func() *core.MultiInstance {
		cfg := cfg
		cfg.Seed = seed
		pop := topology.Generate(cfg)
		demands := traffic.Demands(pop, traffic.Config{Seed: seed})
		mi, err := traffic.RouteMulti(pop, demands, 2)
		if err != nil {
			panic(err)
		}
		return mi
	})
}

// PPMECost is the §5 experiment (no figure in the paper): total
// setup+exploitation cost of PPME(h,k) across the coverage sweep on a
// multi-routed 10-router POP, compared with the cost of the PPM
// placement run at full rate.
func PPMECost(ctx context.Context, seeds int) *stats.Series {
	return PPMECostOn(ctx, NewRunner(), seeds)
}

// PPMECostOn is PPMECost on a caller-managed engine.
func PPMECostOn(ctx context.Context, eng *engine.Runner, seeds int) *stats.Series {
	s := stats.NewSeries(
		"§5: PPME(h,k) cost vs full-rate PPM placement",
		"% monitored", "total cost (setup + exploitation)",
		"PPME cost", "PPME devices", "PPM full-rate cost",
	)
	// §5 has no prescribed instance; a compact POP keeps the MILP fast.
	cfg := topology.Config{Routers: 7, InterRouterLinks: 11, Endpoints: 8}
	costs := sampling.DefaultCosts()
	runSweep(ctx, eng, s, seeds, len(ppmeKSweep), func(ctx context.Context, seed, point int) []stats.Sample {
		mi := cachedMulti(eng, cfg, int64(seed))
		k := ppmeKSweep[point]
		sol := cachedSolve(ctx, eng, engine.MustKey("sample/ppme", mi, k, 20000, "costs=default"), func() *sampling.Solution {
			sol, err := sampling.Solve(ctx, mi, sampling.Config{K: k, Costs: costs, MaxNodes: 20000})
			if err != nil {
				panic(err)
			}
			eng.AddStats(sol.Stats)
			return sol
		})
		// Baseline on the same instance: devices without rate control pay
		// install + full-rate exploitation; minimizing that total is PPME
		// with the exploitation coefficient folded into the install cost.
		fullRate := sampling.CostModel{
			Install: func(e graph.Edge) float64 { return costs.Install(e) + costs.Exploit(e) },
			Exploit: func(graph.Edge) float64 { return 0 },
		}
		base := cachedSolve(ctx, eng, engine.MustKey("sample/ppme", mi, k, 20000, "costs=fullrate"), func() *sampling.Solution {
			sol, err := sampling.Solve(ctx, mi, sampling.Config{K: k, Costs: fullRate, MaxNodes: 20000})
			if err != nil {
				panic(err)
			}
			eng.AddStats(sol.Stats)
			return sol
		})
		x := k * 100
		return []stats.Sample{
			{X: x, Column: "PPME cost", Value: sol.Cost},
			{X: x, Column: "PPME devices", Value: float64(sol.Devices())},
			{X: x, Column: "PPM full-rate cost", Value: base.Cost},
		}
	})
	return s
}

// DynamicResult summarizes the §5.4 dynamic-traffic experiment.
type DynamicResult struct {
	Rounds, Recomputes int
	// MinCoverage is the worst achieved coverage right before an
	// adaptation; FinalCoverage the coverage after the last round.
	MinCoverage, FinalCoverage float64
	// ReoptTime is the cumulative PPME* solve time — the quantity §5.4
	// argues is small enough for on-line use.
	ReoptTime time.Duration
}

// Dynamic runs the §5.4 controller over `rounds` drift steps of ±drift
// relative volume change and reports adaptation statistics. One run is
// inherently sequential (the controller reacts round by round);
// DynamicBatch fans independent seeds out on the engine.
func Dynamic(ctx context.Context, seed int64, rounds int, drift float64) (DynamicResult, error) {
	cfg := topology.Config{Routers: 7, InterRouterLinks: 11, Endpoints: 8, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	mi, err := traffic.RouteMulti(pop, demands, 2)
	if err != nil {
		return DynamicResult{}, err
	}
	// Place devices once with PPME at k=0.9, then only rates adapt.
	k := 0.9
	sol, err := sampling.Solve(ctx, mi, sampling.Config{K: k, MaxNodes: 20000})
	if err != nil {
		return DynamicResult{}, err
	}
	ctl, err := sampling.NewController(ctx, mi, sol.Edges, sampling.Config{K: k}, 0.88)
	if err != nil {
		return DynamicResult{}, err
	}
	res := DynamicResult{Rounds: rounds, MinCoverage: 1}
	cur := demands
	for r := 0; r < rounds; r++ {
		cur = traffic.Perturb(cur, drift, seed*1000+int64(r))
		mi, err = traffic.RouteMulti(pop, cur, 2)
		if err != nil {
			return DynamicResult{}, err
		}
		before := ctl.AchievedFraction(mi)
		if before < res.MinCoverage {
			res.MinCoverage = before
		}
		start := time.Now()
		recomputed, err := ctl.Observe(ctx, mi)
		if err != nil {
			if ctx.Err() != nil {
				// The run's deadline fired mid-reoptimization: that is a
				// caller-imposed stop, not starvation — report it as such.
				return DynamicResult{}, ctx.Err()
			}
			// Drift starved the installed set: even full-rate sampling
			// cannot reach k anymore. The operator would fall back to
			// PPME (add devices); we stop and report the rounds run.
			res.Rounds = r + 1
			res.FinalCoverage = before
			return res, nil
		}
		if recomputed {
			res.ReoptTime += time.Since(start)
			res.Recomputes++
		}
	}
	res.FinalCoverage = ctl.AchievedFraction(mi)
	return res, nil
}

// DynamicBatch runs the §5.4 experiment for seeds 0..seeds-1 on the
// engine and returns the per-seed results in seed order.
func DynamicBatch(ctx context.Context, eng *engine.Runner, seeds, rounds int, drift float64) ([]DynamicResult, error) {
	return engine.Map(ctx, eng, seeds, func(ctx context.Context, i int) (DynamicResult, error) {
		return Dynamic(ctx, int64(i), rounds, drift)
	})
}

// samplerPeriods is the x axis of the §5.2 bias experiment.
var samplerPeriods = []int{10, 100, 1000}

// SamplerBias reproduces the §5.2 discussion (the Metropolis study
// quoted by the paper): how the sampling techniques distort mice
// statistics as the period N grows — with 1-in-1000 sampling, most mice
// flows are never seen at all.
func SamplerBias(seed int64) *stats.Series {
	return SamplerBiasOn(context.Background(), NewRunner(), seed)
}

// SamplerBiasOn is SamplerBias with the per-period cells fanned out on
// a caller-managed engine.
func SamplerBiasOn(ctx context.Context, eng *engine.Runner, seed int64) *stats.Series {
	s := stats.NewSeries(
		"§5.2: sampling bias — % of mice flows entirely missed",
		"period N", "% mice missed",
		"regular", "probabilistic", "geometric",
	)
	trace, truth, err := simulate.GenerateTrace(simulate.TraceConfig{
		Mice: 2000, Elephants: 20, MicePackets: 4, ElephantPackets: 3000, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	mice := 0
	//placevet:ignore maporder -- commutative integer count; no order can leak into the figure
	for _, n := range truth {
		if n < 1000 {
			mice++
		}
	}
	runSweep(ctx, eng, s, 1, len(samplerPeriods), func(_ context.Context, _, point int) []stats.Sample {
		n := samplerPeriods[point]
		var out []stats.Sample
		for _, sc := range []struct {
			name string
			smp  sampling.Sampler
		}{
			{"regular", sampling.NewRegular(n)},
			{"probabilistic", sampling.NewProbabilistic(n, seed)},
			{"geometric", sampling.NewGeometric(n, seed)},
		} {
			st := sampling.CollectTrace(sc.smp, trace)
			rep := sampling.MeasureBias(truth, st, 1/float64(n), 1000)
			out = append(out, stats.Sample{
				X: float64(n), Column: sc.name,
				Value: 100 * float64(rep.MissedMice) / float64(mice),
			})
		}
		return out
	})
	return s
}

// ReplayOutcome is one seed's promised-versus-achieved coverage pair
// from the packet-replay validation.
type ReplayOutcome struct {
	Seed               int64
	Promised, Achieved float64
}

// ReplayCheck validates a PPME solution by packet replay (the simulate
// substrate): returns promised and achieved coverage.
func ReplayCheck(ctx context.Context, seed int64, k float64) (promised, achieved float64, err error) {
	cfg := topology.Config{Routers: 7, InterRouterLinks: 11, Endpoints: 8, Seed: seed}
	pop := topology.Generate(cfg)
	demands := traffic.Demands(pop, traffic.Config{Seed: seed})
	mi, err := traffic.RouteMulti(pop, demands, 2)
	if err != nil {
		return 0, 0, err
	}
	sol, err := sampling.Solve(ctx, mi, sampling.Config{K: k, MaxNodes: 20000})
	if err != nil {
		return 0, 0, err
	}
	promised = simulate.PromisedFraction(mi, sol.Rates)
	res, err := simulate.Run(mi, sol.Rates, simulate.Options{Seed: seed, PacketsPerUnit: 100})
	if err != nil {
		return 0, 0, err
	}
	return promised, res.Fraction, nil
}

// ReplayBatch runs ReplayCheck for seeds 0..seeds-1 on the engine and
// returns the outcomes in seed order.
func ReplayBatch(ctx context.Context, eng *engine.Runner, seeds int, k float64) ([]ReplayOutcome, error) {
	return engine.Map(ctx, eng, seeds, func(ctx context.Context, i int) (ReplayOutcome, error) {
		prom, ach, err := ReplayCheck(ctx, int64(i), k)
		if err != nil {
			return ReplayOutcome{}, err
		}
		return ReplayOutcome{Seed: int64(i), Promised: prom, Achieved: ach}, nil
	})
}
