package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/engine"
)

// TestScenarioSweep runs a small waxman size sweep and checks the
// basic shape: exact never uses more devices than greedy, and the
// parallel run is byte-identical to the serial baseline.
func TestScenarioSweep(t *testing.T) {
	sizes := []int{8, 12}
	seeds := 2
	if !testing.Short() {
		sizes = []int{8, 12, 16}
		seeds = 3
	}
	ctx := context.Background()
	serial, err := ScenarioSweepOn(ctx, engine.Serial(), "waxman", sizes, seeds, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range sizes {
		g := serial.MeanAt(float64(size), "Greedy algorithm")
		ex := serial.MeanAt(float64(size), "ILP")
		if ex > g+1e-9 {
			t.Errorf("size %d: exact mean %g above greedy mean %g", size, ex, g)
		}
		if ex <= 0 {
			t.Errorf("size %d: exact mean %g, want positive", size, ex)
		}
	}
	parallel, err := ScenarioSweepOn(ctx, NewRunner(), "waxman", sizes, seeds, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("parallel sweep differs from serial:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestScenarioSweepBadInput pins the error paths: unknown family and
// a size below the family floor both error cleanly (no worker panic).
func TestScenarioSweepBadInput(t *testing.T) {
	if _, err := ScenarioSweep(context.Background(), "no-such", []int{8}, 1, 0.9, 0); err == nil {
		t.Fatal("want error for unknown family")
	}
	if _, err := ScenarioSweep(context.Background(), "fattree", []int{4, 8}, 1, 0.9, 0); err == nil {
		t.Fatal("want error for size below the family floor")
	}
}
