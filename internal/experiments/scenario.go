package experiments

// Scenario-family sweeps: the ROADMAP's "as many scenarios as you can
// imagine" counterpart to the paper's fixed-size figures. A sweep runs
// the PPM(k) solvers across a size axis of one scenario family
// (internal/scenario), on the same deterministic engine the figure
// reproductions use — parallel merges stay byte-identical to serial.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/passive"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ScenarioSweep runs the greedy and exact PPM(k) solvers across sizes
// of one scenario family, averaged over seeds runs per size, at the
// given coverage target. maxNodes caps the exact branch-and-bound per
// cell (0 = solver default).
func ScenarioSweep(ctx context.Context, family string, sizes []int, seeds int, k float64, maxNodes int) (*stats.Series, error) {
	return ScenarioSweepOn(ctx, NewRunner(), family, sizes, seeds, k, maxNodes)
}

// ScenarioSweepOn is ScenarioSweep on a caller-managed engine.
func ScenarioSweepOn(ctx context.Context, eng *engine.Runner, family string, sizes []int, seeds int, k float64, maxNodes int) (*stats.Series, error) {
	f, err := scenario.Lookup(family)
	if err != nil {
		return nil, err
	}
	for _, size := range sizes {
		if size < f.MinSize {
			return nil, fmt.Errorf("experiments: scenario %s needs size ≥ %d, got %d", family, f.MinSize, size)
		}
	}
	s := stats.NewSeries(
		fmt.Sprintf("scenario %s: devices vs POP size (k=%g)", family, k),
		"routers", "number of monitoring devices",
		"Greedy algorithm", "ILP",
	)
	runSweep(ctx, eng, s, seeds, len(sizes), func(ctx context.Context, seed, point int) []stats.Sample {
		size := sizes[point]
		in := cachedScenarioInstance(eng, family, size, int64(seed))
		g := passive.GreedyGain(in, k)
		ex := cachedSolve(ctx, eng, engine.MustKey("scenario/tap-exact", in, k, maxNodes), func() passive.Placement {
			pl := passive.ExactCover(ctx, in, k, cover.ExactOptions{MaxNodes: maxNodes, Workers: eng.Workers()})
			eng.AddStats(pl.Stats)
			return pl
		})
		x := float64(size)
		return []stats.Sample{
			{X: x, Column: "Greedy algorithm", Value: float64(g.Devices())},
			{X: x, Column: "ILP", Value: float64(ex.Devices())},
		}
	})
	return s, nil
}

// cachedScenarioInstance memoizes scenario generation + routing per
// (family, size, seed). Like the figure cells, it reports failure by
// panicking (runSweep's contract); the built-in families cannot fail
// at registered sizes.
func cachedScenarioInstance(eng *engine.Runner, family string, size int, seed int64) *core.Instance {
	key := engine.MustKey("experiments/scenario", nil, family, size, seed)
	return cached(eng, key, func() *core.Instance {
		sc, err := scenario.Generate(family, size, seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		in, err := sc.Instance()
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return in
	})
}
