package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func paperPOP(seed int64) *topology.POP {
	cfg := topology.Paper10
	cfg.Seed = seed
	return topology.Generate(cfg)
}

func TestDemandsCountMatchesPaper(t *testing.T) {
	pop := paperPOP(1)
	d := Demands(pop, Config{Seed: 1})
	// 12 endpoints → 132 ordered pairs, the Fig 7 traffic count.
	if len(d) != 132 {
		t.Fatalf("demands = %d, want 132", len(d))
	}
	for i, dd := range d {
		if dd.Src == dd.Dst {
			t.Fatalf("demand %d is a self-pair", i)
		}
		if dd.Volume <= 0 {
			t.Fatalf("demand %d has volume %g", i, dd.Volume)
		}
	}
}

func TestDemandsNonUniform(t *testing.T) {
	pop := paperPOP(2)
	d := Demands(pop, Config{Seed: 2})
	var max, sum float64
	for _, dd := range d {
		if dd.Volume > max {
			max = dd.Volume
		}
		sum += dd.Volume
	}
	mean := sum / float64(len(d))
	// Preferred pairs make the max volume stand far above the mean.
	if max < 4*mean {
		t.Fatalf("max %g < 4×mean %g; hot pairs missing", max, mean)
	}
}

func TestDemandsDeterministic(t *testing.T) {
	pop := paperPOP(3)
	a := Demands(pop, Config{Seed: 9})
	b := Demands(pop, Config{Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("demand %d differs between runs", i)
		}
	}
}

func TestRouteBuildsValidInstance(t *testing.T) {
	pop := paperPOP(4)
	in, err := Route(pop, Demands(pop, Config{Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Traffics) != 132 {
		t.Fatalf("traffics = %d, want 132", len(in.Traffics))
	}
	// Every routed path must start and end at virtual endpoints and be
	// at least 2 links long (endpoint → router → … → endpoint).
	for i, tr := range in.Traffics {
		if pop.IsRouter(tr.Path.Src()) || pop.IsRouter(tr.Path.Dst()) {
			t.Fatalf("traffic %d terminates on a router", i)
		}
		if tr.Path.Len() < 2 {
			t.Fatalf("traffic %d path length %d < 2", i, tr.Path.Len())
		}
	}
}

func TestRouteMultiSplitsVolume(t *testing.T) {
	pop := paperPOP(5)
	demands := Demands(pop, Config{Seed: 5})
	mi, err := RouteMulti(pop, demands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mi.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total volume must be preserved by the split.
	want := 0.0
	for _, d := range demands {
		want += d.Volume
	}
	if got := mi.TotalVolume(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("total volume %g, want %g", got, want)
	}
	// At least one traffic should actually be multi-routed.
	multi := false
	for _, tr := range mi.Traffics {
		if len(tr.Routes) > 1 {
			multi = true
			if len(tr.Routes) > 3 {
				t.Fatalf("traffic has %d routes > maxRoutes 3", len(tr.Routes))
			}
			// Shorter routes must carry at least as much volume.
			for i := 1; i < len(tr.Routes); i++ {
				if tr.Routes[i-1].Path.Cost <= tr.Routes[i].Path.Cost &&
					tr.Routes[i-1].Volume < tr.Routes[i].Volume-1e-9 {
					t.Fatal("inverse-cost split violated")
				}
			}
		}
	}
	if !multi {
		t.Fatal("no traffic was split over several routes")
	}
}

func TestRouteMultiRejectsBadK(t *testing.T) {
	pop := paperPOP(6)
	if _, err := RouteMulti(pop, Demands(pop, Config{Seed: 6}), 0); err == nil {
		t.Fatal("want error for maxRoutes=0")
	}
}

func TestScale(t *testing.T) {
	d := []Demand{{Volume: 2}, {Volume: 3}}
	s := Scale(d, 1.5)
	if s[0].Volume != 3 || s[1].Volume != 4.5 {
		t.Fatalf("scaled = %+v", s)
	}
	if d[0].Volume != 2 {
		t.Fatal("Scale mutated its input")
	}
}

func TestPerturbBoundedAndDeterministic(t *testing.T) {
	d := make([]Demand, 50)
	for i := range d {
		d[i].Volume = 10
	}
	a := Perturb(d, 0.3, 7)
	b := Perturb(d, 0.3, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Perturb not deterministic")
		}
		if a[i].Volume < 10*0.69 || a[i].Volume > 10*1.31 {
			t.Fatalf("perturbed volume %g outside ±30%%", a[i].Volume)
		}
	}
}

// Property: routing any generated demand set over any seeded POP yields
// a valid instance whose volume equals the demand volume.
func TestRouteProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := topology.Config{
			Routers:          4 + int(uint64(seed)%12),
			InterRouterLinks: 8 + int(uint64(seed/3)%20),
			Endpoints:        3 + int(uint64(seed/11)%10),
			Seed:             seed,
		}
		pop := topology.Generate(cfg)
		demands := Demands(pop, Config{Seed: seed})
		in, err := Route(pop, demands)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := in.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := 0.0
		for _, d := range demands {
			want += d.Volume
		}
		return math.Abs(in.TotalVolume()-want) <= 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
