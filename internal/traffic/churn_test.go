package traffic

import (
	"math"
	"math/rand"
	"testing"
)

// badVolume reports volumes core.Validate would reject.
func badVolume(v float64) bool {
	return !(v > 0) || math.IsNaN(v) || math.IsInf(v, 0)
}

// TestChurnWithDeltaRecord: the mutation record matches what actually
// happened — counts add up, factors stay inside the configured range,
// and the wrapper Churn returns the identical demand set.
func TestChurnWithDeltaRecord(t *testing.T) {
	pop := modelPOP(11)
	dem := Demands(pop, Config{Seed: 12})
	cfg := ChurnConfig{Seed: 13, Drop: 0.3, Add: 0.25, RescaleLow: 0.5, RescaleHigh: 2}
	out, delta, err := ChurnWithDelta(pop, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dem) - delta.Dropped + delta.Added; got != len(out) {
		t.Fatalf("counts do not add up: %d - %d + %d != %d", len(dem), delta.Dropped, delta.Added, len(out))
	}
	if delta.Rescaled != len(out) {
		t.Fatalf("every output demand is rescaled; got %d of %d", delta.Rescaled, len(out))
	}
	if delta.MinFactor < cfg.RescaleLow || delta.MaxFactor > cfg.RescaleHigh || delta.MinFactor > delta.MaxFactor {
		t.Fatalf("factor range [%g, %g] outside configured [%g, %g]",
			delta.MinFactor, delta.MaxFactor, cfg.RescaleLow, cfg.RescaleHigh)
	}
	if delta.Clamped != 0 {
		t.Fatalf("clean input clamped %d volumes", delta.Clamped)
	}
	wrapped, err := Churn(pop, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrapped) != len(out) {
		t.Fatalf("Churn wrapper diverged: %d vs %d demands", len(wrapped), len(out))
	}
	for i := range out {
		if wrapped[i] != out[i] {
			t.Fatalf("Churn wrapper diverged at %d: %+v vs %+v", i, wrapped[i], out[i])
		}
	}
}

// TestChurnSanitizesGarbageVolumes: NaN, ±Inf, zero and negative input
// volumes must never survive into the output (the old guard's <= 0
// comparison waved NaN and +Inf straight through).
func TestChurnSanitizesGarbageVolumes(t *testing.T) {
	pop := modelPOP(14)
	a, b := pop.Endpoints[0], pop.Endpoints[1]
	dem := []Demand{
		{Src: a, Dst: b, Volume: math.NaN()},
		{Src: b, Dst: a, Volume: math.Inf(1)},
		{Src: a, Dst: b, Volume: math.Inf(-1)},
		{Src: b, Dst: a, Volume: -3},
		{Src: a, Dst: b, Volume: 0},
		{Src: b, Dst: a, Volume: 7},
	}
	// Drop ~0 so the garbage rows survive into the rescale stage.
	out, delta, err := ChurnWithDelta(pop, dem, ChurnConfig{Seed: 1, Drop: 1e-12, Add: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range out {
		if badVolume(d.Volume) {
			t.Fatalf("output %d carries unusable volume %g", i, d.Volume)
		}
	}
	if delta.Clamped == 0 {
		t.Fatal("garbage input produced no clamps — the guard never fired")
	}
	if err := checkRoutable(pop, out); err != nil {
		t.Fatalf("sanitized churn output not routable: %v", err)
	}
}

// TestChurnPropertyNoBadVolumes sweeps seeds and configs: churned
// matrices never contain negative/NaN/Inf demands, mirroring the
// topology hardening property tests.
func TestChurnPropertyNoBadVolumes(t *testing.T) {
	pop := modelPOP(15)
	base := Demands(pop, Config{Seed: 16})
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		cfg := ChurnConfig{
			Seed:        rng.Int63(),
			Drop:        rng.Float64() * 0.9,
			Add:         rng.Float64() * 0.9,
			RescaleLow:  0.1 + rng.Float64(),
			RescaleHigh: 1.2 + rng.Float64()*3,
		}
		dem := base
		// Every third trial seeds garbage volumes into the input.
		if trial%3 == 0 {
			dem = append([]Demand(nil), base...)
			dem[rng.Intn(len(dem))].Volume = math.NaN()
			dem[rng.Intn(len(dem))].Volume = math.Inf(1)
			dem[rng.Intn(len(dem))].Volume = -rng.Float64()
		}
		out, delta, err := ChurnWithDelta(pop, dem, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, d := range out {
			if badVolume(d.Volume) {
				t.Fatalf("trial %d: output %d has volume %g", trial, i, d.Volume)
			}
			if d.Src == d.Dst {
				t.Fatalf("trial %d: self-demand", trial)
			}
		}
		if delta.Rescaled > 0 && (delta.MinFactor < cfg.RescaleLow || delta.MaxFactor > cfg.RescaleHigh) {
			t.Fatalf("trial %d: factors [%g, %g] escaped [%g, %g]",
				trial, delta.MinFactor, delta.MaxFactor, cfg.RescaleLow, cfg.RescaleHigh)
		}
	}
}

// FuzzChurn drives ChurnWithDelta with arbitrary configs and volumes:
// it must either error or return a demand set with only usable volumes
// and a self-consistent delta — never panic.
func FuzzChurn(f *testing.F) {
	f.Add(int64(1), 0.2, 0.2, 0.5, 2.0, 10.0, 20.0, 30.0)
	f.Add(int64(2), 0.0, 0.0, 0.0, 0.0, math.NaN(), math.Inf(1), -5.0)
	f.Add(int64(3), 1.0, 0.9, 0.1, 4.0, 0.0, 1e300, 1e-300)
	f.Add(int64(4), 0.5, 0.5, 2.0, 1.0, 1.0, 1.0, 1.0) // inverted range → error
	pop := modelPOP(18)
	a, b := pop.Endpoints[0], pop.Endpoints[1]
	f.Fuzz(func(t *testing.T, seed int64, drop, add, lo, hi, v1, v2, v3 float64) {
		dem := []Demand{
			{Src: a, Dst: b, Volume: v1},
			{Src: b, Dst: a, Volume: v2},
			{Src: a, Dst: b, Volume: v3},
		}
		cfg := ChurnConfig{Seed: seed, Drop: drop, Add: add, RescaleLow: lo, RescaleHigh: hi}
		out, delta, err := ChurnWithDelta(pop, dem, cfg)
		if err != nil {
			return
		}
		if got := len(dem) - delta.Dropped + delta.Added; got != len(out) {
			t.Fatalf("counts do not add up: %d - %d + %d != %d", len(dem), delta.Dropped, delta.Added, len(out))
		}
		for i, d := range out {
			if badVolume(d.Volume) {
				t.Fatalf("output %d has unusable volume %g (in: %g %g %g)", i, d.Volume, v1, v2, v3)
			}
		}
	})
}
