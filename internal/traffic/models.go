package traffic

// Traffic-matrix models beyond §4.4's preferred-pair draw: a gravity
// model (demand proportional to endpoint masses, the standard ISP
// traffic-matrix estimator), a heavy-tailed Zipf model (a few elephant
// pairs dominate, as Bhattacharyya et al. [2] observed), and a churn
// mutator (add/remove traffics, volume rescale) for dynamic-resampling
// scenarios. Every model takes an explicit seed and draws all
// randomness from one private rand.Rand, so instances are reproducible
// regardless of concurrency.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// GravityConfig parameterizes Gravity.
type GravityConfig struct {
	// Seed drives the endpoint-mass draw.
	Seed int64
	// MeanVolume is the average demand volume (default 10, matching
	// Config.BaseVolume's midpoint).
	MeanVolume float64
	// Spread is the σ of the log-normal endpoint masses; larger spreads
	// concentrate volume on fewer endpoints. Default 1.
	Spread float64
}

func (c GravityConfig) withDefaults() GravityConfig {
	if c.MeanVolume == 0 {
		c.MeanVolume = 10
	}
	if c.Spread == 0 {
		c.Spread = 1
	}
	return c
}

// Gravity draws one demand per ordered endpoint pair with volume
// proportional to the product of log-normal endpoint masses — the
// gravity model operators fit to real traffic matrices: big customers
// exchange disproportionately more traffic.
func Gravity(pop *topology.POP, cfg GravityConfig) []Demand {
	cfg = cfg.withDefaults()
	eps := pop.Endpoints
	rng := rand.New(rand.NewSource(cfg.Seed))
	mass := make([]float64, len(eps))
	var total float64
	for i := range eps {
		mass[i] = math.Exp(cfg.Spread * rng.NormFloat64())
	}
	for i := range eps {
		for j := range eps {
			if i != j {
				total += mass[i] * mass[j]
			}
		}
	}
	if total == 0 {
		return nil
	}
	scale := cfg.MeanVolume * float64(len(eps)*(len(eps)-1)) / total
	var out []Demand
	for i, s := range eps {
		for j, d := range eps {
			if i == j {
				continue
			}
			out = append(out, Demand{Src: s, Dst: d, Volume: mass[i] * mass[j] * scale})
		}
	}
	return out
}

// ZipfConfig parameterizes Zipf.
type ZipfConfig struct {
	// Seed drives the rank assignment.
	Seed int64
	// MaxVolume is the volume of the rank-1 (heaviest) pair; default
	// 200 (the §4.4 hot-pair volume BaseVolume·HotFactor).
	MaxVolume float64
	// Exponent is the Zipf decay exponent s in v ∝ rank^−s; default 1.1.
	Exponent float64
}

func (c ZipfConfig) withDefaults() ZipfConfig {
	if c.MaxVolume == 0 {
		c.MaxVolume = 200
	}
	if c.Exponent == 0 {
		c.Exponent = 1.1
	}
	return c
}

// Zipf draws one demand per ordered endpoint pair with Zipf-distributed
// volumes: pairs are ranked by a random permutation and the rank-r pair
// carries MaxVolume·r^−s — the heavy-tailed elephants-and-mice mix
// observed in POP traffic.
func Zipf(pop *topology.POP, cfg ZipfConfig) []Demand {
	cfg = cfg.withDefaults()
	eps := pop.Endpoints
	n := len(eps)
	if n < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n * (n - 1))
	out := make([]Demand, 0, n*(n-1))
	pair := 0
	for i, s := range eps {
		for j, d := range eps {
			if i == j {
				continue
			}
			rank := float64(perm[pair] + 1)
			pair++
			out = append(out, Demand{Src: s, Dst: d, Volume: cfg.MaxVolume / math.Pow(rank, cfg.Exponent)})
		}
	}
	return out
}

// ChurnConfig parameterizes Churn.
type ChurnConfig struct {
	// Seed drives every churn decision.
	Seed int64
	// Drop is the fraction of demands removed (default 0.2).
	Drop float64
	// Add is the fraction (of the original count) of fresh demands
	// created between random endpoint pairs (default 0.2).
	Add float64
	// RescaleLow/RescaleHigh bound the per-demand volume rescale factor
	// (defaults 0.5 and 2 — capacity upgrades and degradations).
	RescaleLow, RescaleHigh float64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Drop == 0 {
		c.Drop = 0.2
	}
	if c.Add == 0 {
		c.Add = 0.2
	}
	if c.RescaleLow == 0 {
		c.RescaleLow = 0.5
	}
	if c.RescaleHigh == 0 {
		c.RescaleHigh = 2
	}
	return c
}

// ChurnDelta records the mutation Churn applied, so callers (and the
// session layer's tests) can assert the delta is bounded: how many
// demands were dropped and added, and the observed rescale-factor
// range over the surviving rows.
type ChurnDelta struct {
	// Dropped and Added count removed and fresh demands.
	Dropped int
	Added   int
	// Rescaled counts demands whose volume was multiplied by a factor;
	// MinFactor and MaxFactor bound the factors actually drawn (both 0
	// when Rescaled is 0). Always within [cfg.RescaleLow,
	// cfg.RescaleHigh].
	Rescaled  int
	MinFactor float64
	MaxFactor float64
	// Clamped counts output volumes the sanitation guard replaced
	// because they came out non-positive or non-finite (possible only
	// when the input already carried garbage volumes).
	Clamped int
}

// Churn mutates a demand set the way a live POP drifts between
// re-optimizations (§5.4's dynamic scenarios): a fraction of traffics
// disappears, fresh traffics appear between random endpoint pairs (at
// the surviving demands' mean volume), and every volume is rescaled by
// a random factor. The input slice is not modified. It errors when the
// POP has fewer than 2 endpoints and demands must be added.
func Churn(pop *topology.POP, demands []Demand, cfg ChurnConfig) ([]Demand, error) {
	out, _, err := ChurnWithDelta(pop, demands, cfg)
	return out, err
}

// ChurnWithDelta is Churn plus the applied-mutation record. The output
// demands never carry negative, zero, NaN or Inf volumes, even when
// the input does: such volumes are clamped to a small positive
// fallback (and counted in ChurnDelta.Clamped).
func ChurnWithDelta(pop *topology.POP, demands []Demand, cfg ChurnConfig) ([]Demand, ChurnDelta, error) {
	cfg = cfg.withDefaults()
	var delta ChurnDelta
	if cfg.RescaleLow <= 0 || cfg.RescaleHigh < cfg.RescaleLow || math.IsInf(cfg.RescaleHigh, 0) || math.IsNaN(cfg.RescaleLow) || math.IsNaN(cfg.RescaleHigh) {
		return nil, delta, fmt.Errorf("traffic: bad rescale range [%g, %g]", cfg.RescaleLow, cfg.RescaleHigh)
	}
	if !(cfg.Drop >= 0 && cfg.Drop <= 1) {
		return nil, delta, fmt.Errorf("traffic: drop fraction %g outside [0, 1]", cfg.Drop)
	}
	// A growth factor above 1000× is a config bug, not churn; the bound
	// also keeps hostile fractions from demanding absurd allocations.
	if !(cfg.Add >= 0 && cfg.Add <= 1000) {
		return nil, delta, fmt.Errorf("traffic: add fraction %g outside [0, 1000]", cfg.Add)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Demand
	var mean float64
	finite := 0
	for _, d := range demands {
		if rng.Float64() < cfg.Drop {
			delta.Dropped++
			continue
		}
		out = append(out, d)
		// The mean seeds fresh-demand volumes and the clamp fallback:
		// average only the usable inputs so one NaN or Inf row cannot
		// poison every added demand.
		if d.Volume > 0 && !math.IsInf(d.Volume, 1) {
			mean += d.Volume
			finite++
		}
	}
	if finite > 0 {
		mean /= float64(finite)
	} else {
		mean = 10
	}
	add := int(float64(len(demands))*cfg.Add + 0.5)
	eps := pop.Endpoints
	if add > 0 && len(eps) < 2 {
		return nil, delta, fmt.Errorf("traffic: churn needs ≥2 endpoints to add demands, got %d", len(eps))
	}
	for i := 0; i < add; i++ {
		s := eps[rng.Intn(len(eps))]
		d := eps[rng.Intn(len(eps))]
		for s == d {
			d = eps[rng.Intn(len(eps))]
		}
		out = append(out, Demand{Src: s, Dst: d, Volume: mean * (0.5 + rng.Float64())})
	}
	delta.Added = add
	for i := range out {
		f := cfg.RescaleLow + rng.Float64()*(cfg.RescaleHigh-cfg.RescaleLow)
		out[i].Volume *= f
		delta.Rescaled++
		if delta.Rescaled == 1 {
			delta.MinFactor, delta.MaxFactor = f, f
		} else {
			if f < delta.MinFactor {
				delta.MinFactor = f
			}
			if f > delta.MaxFactor {
				delta.MaxFactor = f
			}
		}
	}
	// Guard against unusable volumes (core.Validate rejects them). The
	// <= 0 comparison alone would wave NaN (every comparison false) and
	// +Inf straight through, so test finiteness explicitly.
	for i := range out {
		if v := out[i].Volume; !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			out[i].Volume = mean / 100
			delta.Clamped++
		}
	}
	return out, delta, nil
}

// Aggregate merges duplicate (src, dst) demands by summing their
// volumes; Churn can create parallel demands and single-routed
// instances are cleaner with one traffic per pair.
func Aggregate(demands []Demand) []Demand {
	type key struct{ s, d graph.NodeID }
	idx := make(map[key]int, len(demands))
	var out []Demand
	for _, dm := range demands {
		k := key{dm.Src, dm.Dst}
		if i, ok := idx[k]; ok {
			out[i].Volume += dm.Volume
			continue
		}
		idx[k] = len(out)
		out = append(out, dm)
	}
	return out
}
