// Package traffic generates traffic matrices over POP topologies and
// routes them into solver instances.
//
// Following §4.4 of the paper: real traffic matrices were unavailable to
// the authors too, so demands are generated randomly between all ordered
// pairs of virtual endpoints, with a few "preferred pairs" carrying much
// higher volume so the distribution is non-uniform (Bhattacharyya et
// al. [2] observed that the geographic spread of traffic across egress
// points is far from uniform). Routing is shortest-path and, as in the
// paper, not assumed symmetric. The multi-routed variant of §5 splits a
// demand over several shortest routes for load balancing.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Demand is an un-routed traffic request between two endpoints.
type Demand struct {
	Src, Dst graph.NodeID
	Volume   float64
}

// Config parameterizes demand generation.
type Config struct {
	// Seed drives the random volumes and the preferred-pair choice.
	Seed int64
	// PreferredPairs is the number of endpoint pairs boosted to hot
	// volume; default max(2, endpoints/6).
	PreferredPairs int
	// BaseVolume is the maximum volume of a normal demand (uniform in
	// (0, BaseVolume]); default 10.
	BaseVolume float64
	// HotFactor multiplies the volume of preferred pairs; default 20.
	HotFactor float64
}

func (c Config) withDefaults(endpoints int) Config {
	if c.PreferredPairs == 0 {
		c.PreferredPairs = endpoints / 6
		if c.PreferredPairs < 2 {
			c.PreferredPairs = 2
		}
	}
	if c.BaseVolume == 0 {
		c.BaseVolume = 10
	}
	if c.HotFactor == 0 {
		c.HotFactor = 20
	}
	return c
}

// Demands generates one demand per ordered pair of distinct endpoints of
// the POP (n·(n−1) demands for n endpoints, matching the paper's traffic
// counts), with non-uniform volumes.
func Demands(pop *topology.POP, cfg Config) []Demand {
	eps := pop.Endpoints
	cfg = cfg.withDefaults(len(eps))
	rng := rand.New(rand.NewSource(cfg.Seed))

	hot := make(map[[2]graph.NodeID]bool, cfg.PreferredPairs)
	for len(hot) < cfg.PreferredPairs && len(eps) >= 2 {
		s := eps[rng.Intn(len(eps))]
		d := eps[rng.Intn(len(eps))]
		if s != d {
			hot[[2]graph.NodeID{s, d}] = true
		}
	}

	var out []Demand
	for _, s := range eps {
		for _, d := range eps {
			if s == d {
				continue
			}
			v := rng.Float64() * cfg.BaseVolume
			if v <= 0 {
				v = cfg.BaseVolume / 2
			}
			if hot[[2]graph.NodeID{s, d}] {
				v *= cfg.HotFactor
			}
			out = append(out, Demand{Src: s, Dst: d, Volume: v})
		}
	}
	return out
}

// Route builds a single-routed PPM instance: every demand follows its
// shortest path (the paper's §4.4 assumption; paths are not assumed
// symmetric).
func Route(pop *topology.POP, demands []Demand) (*core.Instance, error) {
	in := &core.Instance{G: pop.G}
	// One Dijkstra per distinct source.
	bySrc := make(map[graph.NodeID]map[graph.NodeID]graph.Path)
	for i, d := range demands {
		paths, ok := bySrc[d.Src]
		if !ok {
			paths = pop.G.ShortestPaths(d.Src)
			bySrc[d.Src] = paths
		}
		p, ok := paths[d.Dst]
		if !ok {
			return nil, fmt.Errorf("traffic: demand %d: no route %d→%d", i, d.Src, d.Dst)
		}
		in.Traffics = append(in.Traffics, core.Traffic{ID: i, Path: p, Volume: d.Volume})
	}
	return in, nil
}

// RouteMulti builds a §5 multi-routed instance: each demand is split
// over up to maxRoutes loopless shortest routes; the split is weighted
// by inverse path cost (shorter routes carry more), normalizing to the
// demand volume, which mimics load-balanced IGP routing.
func RouteMulti(pop *topology.POP, demands []Demand, maxRoutes int) (*core.MultiInstance, error) {
	if maxRoutes < 1 {
		return nil, fmt.Errorf("traffic: maxRoutes %d < 1", maxRoutes)
	}
	mi := &core.MultiInstance{G: pop.G}
	for i, d := range demands {
		paths := pop.G.KShortestPaths(d.Src, d.Dst, maxRoutes)
		if len(paths) == 0 {
			return nil, fmt.Errorf("traffic: demand %d: no route %d→%d", i, d.Src, d.Dst)
		}
		inv := 0.0
		for _, p := range paths {
			inv += 1 / p.Cost
		}
		mt := core.MultiTraffic{ID: i, Src: d.Src, Dst: d.Dst}
		for _, p := range paths {
			share := (1 / p.Cost) / inv
			mt.Routes = append(mt.Routes, core.Route{Path: p, Volume: d.Volume * share})
		}
		mi.Traffics = append(mi.Traffics, mt)
	}
	return mi, nil
}

// Scale returns a copy of demands with every volume multiplied by f;
// used by the dynamic-traffic experiments (§5.4) to model drift.
func Scale(demands []Demand, f float64) []Demand {
	out := make([]Demand, len(demands))
	for i, d := range demands {
		d.Volume *= f
		out[i] = d
	}
	return out
}

// Perturb returns a copy of demands with volumes multiplied by random
// factors in [1-amount, 1+amount], modelling traffic fluctuation inside
// the POP (§5.4). A deterministic rng seed makes experiments repeatable.
func Perturb(demands []Demand, amount float64, seed int64) []Demand {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Demand, len(demands))
	for i, d := range demands {
		f := 1 + (rng.Float64()*2-1)*amount
		if f < 0.01 {
			f = 0.01
		}
		d.Volume *= f
		out[i] = d
	}
	return out
}
