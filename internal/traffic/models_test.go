package traffic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/topology"
)

func modelPOP(seed int64) *topology.POP {
	return topology.Scale(10, rand.New(rand.NewSource(seed)))
}

func TestGravityAllPairsPositive(t *testing.T) {
	pop := modelPOP(1)
	dem := Gravity(pop, GravityConfig{Seed: 7})
	n := len(pop.Endpoints)
	if len(dem) != n*(n-1) {
		t.Fatalf("got %d demands, want %d", len(dem), n*(n-1))
	}
	var total float64
	for _, d := range dem {
		if d.Volume <= 0 || math.IsNaN(d.Volume) || math.IsInf(d.Volume, 0) {
			t.Fatalf("bad volume %g", d.Volume)
		}
		if d.Src == d.Dst {
			t.Fatalf("self-demand on %d", d.Src)
		}
		total += d.Volume
	}
	// Mass normalization: mean volume ≈ MeanVolume.
	if mean := total / float64(len(dem)); math.Abs(mean-10) > 1e-9 {
		t.Fatalf("mean volume %g, want 10", mean)
	}
	// Deterministic per seed.
	again := Gravity(pop, GravityConfig{Seed: 7})
	for i := range dem {
		if dem[i] != again[i] {
			t.Fatalf("demand %d differs across identical seeds", i)
		}
	}
	if other := Gravity(pop, GravityConfig{Seed: 8}); other[0].Volume == dem[0].Volume {
		t.Log("seed 7 and 8 coincide on the first demand (unlikely but not fatal)")
	}
}

func TestZipfHeavyTail(t *testing.T) {
	pop := modelPOP(2)
	dem := Zipf(pop, ZipfConfig{Seed: 3})
	n := len(pop.Endpoints)
	if len(dem) != n*(n-1) {
		t.Fatalf("got %d demands, want %d", len(dem), n*(n-1))
	}
	vols := make([]float64, len(dem))
	for i, d := range dem {
		if d.Volume <= 0 {
			t.Fatalf("bad volume %g", d.Volume)
		}
		vols[i] = d.Volume
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	if vols[0] != 200 {
		t.Fatalf("rank-1 volume %g, want MaxVolume 200", vols[0])
	}
	// Heavy tail: the top 10% of pairs carry the majority of volume.
	var total, top float64
	for i, v := range vols {
		total += v
		if i < len(vols)/10 {
			top += v
		}
	}
	if top < 0.5*total {
		t.Fatalf("top decile carries %g of %g — not heavy-tailed", top, total)
	}
}

func TestChurnMutates(t *testing.T) {
	pop := modelPOP(3)
	dem := Demands(pop, Config{Seed: 4})
	out, err := Churn(pop, dem, ChurnConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("churn dropped everything")
	}
	for _, d := range out {
		if d.Volume <= 0 {
			t.Fatalf("bad volume %g", d.Volume)
		}
		if d.Src == d.Dst {
			t.Fatalf("self-demand on %d", d.Src)
		}
	}
	// The input must not be modified.
	orig := Demands(pop, Config{Seed: 4})
	for i := range dem {
		if dem[i] != orig[i] {
			t.Fatalf("Churn modified its input at %d", i)
		}
	}
	// Deterministic per seed, different across seeds.
	again, err := Churn(pop, dem, ChurnConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(out) {
		t.Fatalf("identical seeds gave %d vs %d demands", len(out), len(again))
	}
	for i := range out {
		if out[i] != again[i] {
			t.Fatalf("churn demand %d differs across identical seeds", i)
		}
	}
	if err := checkRoutable(pop, out); err != nil {
		t.Fatal(err)
	}
	if _, err := Churn(pop, dem, ChurnConfig{Seed: 1, RescaleLow: 2, RescaleHigh: 1}); err == nil {
		t.Fatal("want error for inverted rescale range")
	}
}

func checkRoutable(pop *topology.POP, dem []Demand) error {
	_, err := Route(pop, Aggregate(dem))
	return err
}

func TestAggregateMergesDuplicates(t *testing.T) {
	pop := modelPOP(6)
	a, b := pop.Endpoints[0], pop.Endpoints[1]
	dem := []Demand{{Src: a, Dst: b, Volume: 1}, {Src: b, Dst: a, Volume: 2}, {Src: a, Dst: b, Volume: 3}}
	out := Aggregate(dem)
	if len(out) != 2 {
		t.Fatalf("got %d demands, want 2", len(out))
	}
	if out[0].Volume != 4 || out[0].Src != a {
		t.Fatalf("merged volume %g on %d→%d, want 4 on %d→%d", out[0].Volume, out[0].Src, out[0].Dst, a, b)
	}
}
