package scenario

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/topology"
)

// TestFamiliesGenerateValidInstances smoke-tests every registered
// family across sizes: connected POP, routable single- and
// multi-routed instances, validation clean.
func TestFamiliesGenerateValidInstances(t *testing.T) {
	sizes := []int{6, 10, 25}
	if testing.Short() {
		sizes = []int{6, 10}
	}
	for _, fam := range Families() {
		for _, size := range sizes {
			for seed := int64(0); seed < 3; seed++ {
				s, err := Generate(fam, size, seed)
				if err != nil {
					t.Fatalf("%s/%d/%d: %v", fam, size, seed, err)
				}
				if s.Family != fam || s.Size != size || s.Seed != seed {
					t.Fatalf("%s/%d/%d: scenario mislabeled as %s/%d/%d", fam, size, seed, s.Family, s.Size, s.Seed)
				}
				if !s.POP.G.Connected() {
					t.Fatalf("%s/%d/%d: disconnected POP", fam, size, seed)
				}
				if len(s.Demands) == 0 {
					t.Fatalf("%s/%d/%d: no demands", fam, size, seed)
				}
				in, err := s.Instance()
				if err != nil {
					t.Fatalf("%s/%d/%d route: %v", fam, size, seed, err)
				}
				if err := in.Validate(); err != nil {
					t.Fatalf("%s/%d/%d validate: %v", fam, size, seed, err)
				}
				mi, err := s.MultiInstance(2)
				if err != nil {
					t.Fatalf("%s/%d/%d multi-route: %v", fam, size, seed, err)
				}
				if err := mi.Validate(); err != nil {
					t.Fatalf("%s/%d/%d multi-validate: %v", fam, size, seed, err)
				}
			}
		}
	}
}

// TestWriteReadRoundTrip is the satellite property suite: for every
// generator family across 50 seeds, Write→Read→Write must be
// byte-identical and the re-read POP must preserve the node classes.
func TestWriteReadRoundTrip(t *testing.T) {
	const seeds = 50
	for _, fam := range Families() {
		f, err := Lookup(fam)
		if err != nil {
			t.Fatal(err)
		}
		size := f.MinSize + 4
		for seed := int64(0); seed < seeds; seed++ {
			s, err := Generate(fam, size, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			var first bytes.Buffer
			if err := topology.Write(&first, s.POP); err != nil {
				t.Fatalf("%s/%d write: %v", fam, seed, err)
			}
			back, err := topology.Read(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("%s/%d read: %v", fam, seed, err)
			}
			if got, want := back.G.NumNodes(), s.POP.G.NumNodes(); got != want {
				t.Fatalf("%s/%d: %d nodes after round-trip, want %d", fam, seed, got, want)
			}
			if got, want := back.G.NumEdges(), s.POP.G.NumEdges(); got != want {
				t.Fatalf("%s/%d: %d edges after round-trip, want %d", fam, seed, got, want)
			}
			for n := range back.Kind {
				if back.Kind[n] != s.POP.Kind[n] {
					t.Fatalf("%s/%d: node %d kind %v after round-trip, want %v", fam, seed, n, back.Kind[n], s.POP.Kind[n])
				}
			}
			var second bytes.Buffer
			if err := topology.Write(&second, back); err != nil {
				t.Fatalf("%s/%d rewrite: %v", fam, seed, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("%s/%d: Write→Read→Write differs:\n%s\n---\n%s", fam, seed, first.String(), second.String())
			}
		}
	}
}

// fingerprint canonicalizes a scenario: the serialized POP plus every
// demand triple.
func fingerprint(t *testing.T, s *Scenario) string {
	t.Helper()
	var buf bytes.Buffer
	if err := topology.Write(&buf, s.POP); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, d := range s.Demands {
		fmt.Fprintf(&buf, "demand %d %d %.17g\n", d.Src, d.Dst, d.Volume)
	}
	return buf.String()
}

// TestGenerateDeterministicAcrossWorkers is the seed-handling
// regression suite: identical (family, size, seed) triples must
// produce byte-identical instances whether scenarios are drawn
// serially or fanned out on a parallel engine — no generator may share
// hidden rand state.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	fams := Families()
	type cell struct {
		fam  string
		seed int64
	}
	var cells []cell
	for _, f := range fams {
		for seed := int64(0); seed < 4; seed++ {
			cells = append(cells, cell{f, seed})
		}
	}
	draw := func(workers int) []string {
		runner := engine.New(engine.Options{Workers: workers})
		out, err := engine.Map(context.Background(), runner, len(cells), func(_ context.Context, i int) (string, error) {
			f, err := Lookup(cells[i].fam)
			if err != nil {
				return "", err
			}
			s, err := Generate(cells[i].fam, f.MinSize+5, cells[i].seed)
			if err != nil {
				return "", err
			}
			return fingerprint(t, s), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := draw(1)
	for _, workers := range []int{4, 8} {
		parallel := draw(workers)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Errorf("cell %v: workers=%d instance differs from serial", cells[i], workers)
			}
		}
	}
	// And plain repeated generation is stable too.
	again := draw(1)
	for i := range serial {
		if serial[i] != again[i] {
			t.Errorf("cell %v: repeated generation differs", cells[i])
		}
	}
}

// TestRegistry pins the registry error paths and the built-in catalog.
func TestRegistry(t *testing.T) {
	fams := Families()
	want := []string{"barabasi", "churn", "fattree", "metro", "pop", "waxman"}
	if len(fams) != len(want) {
		t.Fatalf("families = %v, want %v", fams, want)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Fatalf("families = %v, want %v", fams, want)
		}
	}
	if err := Register(Family{Name: "pop", Generate: func(int, int64) (*Scenario, error) { return nil, nil }}); err == nil {
		t.Fatal("want duplicate-name error")
	}
	if err := Register(Family{Name: "", Generate: func(int, int64) (*Scenario, error) { return nil, nil }}); err == nil {
		t.Fatal("want empty-name error")
	}
	if err := Register(Family{Name: "nilgen"}); err == nil {
		t.Fatal("want nil-generator error")
	}
	if _, err := Lookup("no-such"); err == nil {
		t.Fatal("want unknown-family error")
	}
	if _, err := Generate("pop", 1, 0); err == nil {
		t.Fatal("want size-floor error")
	}
}
