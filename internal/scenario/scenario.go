// Package scenario is the workload-family subsystem: a string-keyed
// registry of seeded scenario generators (mirroring the solver registry
// of the repro facade) that turn a (family, size, seed) triple into a
// reproducible POP topology plus traffic matrix, ready to route into
// solver instances.
//
// The paper evaluates only two Rocketfuel-derived POP sizes (10
// routers/132 traffics and 15 routers/1980 traffics, §4.4); the
// built-in families extend the instance methodology to Waxman
// geometric, Barabási–Albert power-law, ring/ladder metro, fat-tree
// access and size-parameterized two-level POPs, crossed with
// preferred-pair, gravity-model, Zipf heavy-tailed and churned traffic
// matrices. internal/scenariotest locks every registered solver to
// shared invariants across all of them.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Scenario is one generated instance of a family: the POP, the
// un-routed demand set, and the triple that reproduces both.
type Scenario struct {
	Family string
	Size   int
	Seed   int64

	POP     *topology.POP
	Demands []traffic.Demand
}

// Instance routes the demands on shortest paths into a single-routed
// PPM instance (§4.4 semantics).
func (s *Scenario) Instance() (*core.Instance, error) {
	return traffic.Route(s.POP, s.Demands)
}

// MultiInstance routes the demands over up to maxRoutes load-balanced
// shortest routes into a §5 multi-routed instance.
func (s *Scenario) MultiInstance(maxRoutes int) (*core.MultiInstance, error) {
	return traffic.RouteMulti(s.POP, s.Demands, maxRoutes)
}

// Family is a named, seeded scenario generator. Generate must be a
// pure function of (size, seed): identical arguments produce identical
// scenarios, byte-for-byte, regardless of concurrency — the engine
// determinism suite regression-tests this for every built-in family.
type Family struct {
	// Name is the registry key, e.g. "waxman".
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// MinSize is the smallest router count the family supports.
	MinSize int
	// Generate builds the scenario for a router count and seed.
	Generate func(size int, seed int64) (*Scenario, error)
}

var registry = struct {
	sync.RWMutex
	m map[string]Family
}{m: make(map[string]Family)}

// Register adds f to the package registry under f.Name. It errors on
// an empty or already-taken name or a nil generator.
func Register(f Family) error {
	if f.Name == "" {
		return fmt.Errorf("scenario: family with empty name")
	}
	if f.Generate == nil {
		return fmt.Errorf("scenario: family %q has nil generator", f.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[f.Name]; dup {
		return fmt.Errorf("scenario: family %q already registered", f.Name)
	}
	registry.m[f.Name] = f
	return nil
}

func mustRegister(f Family) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the registered family by name.
func Lookup(name string) (Family, error) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.m[name]
	if !ok {
		return Family{}, fmt.Errorf("scenario: unknown family %q (known: %v)", name, namesLocked())
	}
	return f, nil
}

// Families lists all registered family names, sorted.
func Families() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate looks a family up and draws the scenario for (size, seed) —
// the one-call form the CLIs and the facade use.
func Generate(family string, size int, seed int64) (*Scenario, error) {
	f, err := Lookup(family)
	if err != nil {
		return nil, err
	}
	if size < f.MinSize {
		return nil, fmt.Errorf("scenario: family %q needs size ≥ %d, got %d", family, f.MinSize, size)
	}
	s, err := f.Generate(size, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s(size=%d, seed=%d): %w", family, size, seed, err)
	}
	return s, nil
}

// endpointCount scales the virtual-endpoint count with the router
// count: size/2 + 2, at least 4 — small enough that the all-pairs
// demand matrix stays tractable across the size sweep, large enough
// that every instance has a non-trivial traffic mix.
func endpointCount(size int) int {
	n := size/2 + 2
	if n < 4 {
		n = 4
	}
	return n
}

// subSeeds derives independent topology and traffic seeds from one
// scenario seed, so families composing a topology generator with a
// traffic model expose exactly one seed to callers.
func subSeeds(seed int64) (*rand.Rand, int64) {
	rng := rand.New(rand.NewSource(seed))
	topoRng := rand.New(rand.NewSource(rng.Int63()))
	trafficSeed := rng.Int63()
	return topoRng, trafficSeed
}

func scenarioOf(family string, size int, seed int64, pop *topology.POP, dem []traffic.Demand) *Scenario {
	return &Scenario{Family: family, Size: size, Seed: seed, POP: pop, Demands: dem}
}

func init() {
	mustRegister(Family{
		Name:        "pop",
		Description: "size-parameterized two-level paper POP, preferred-pair traffic (§4.4 scaled)",
		MinSize:     3,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.Scale(size, topoRng)
			dem := traffic.Demands(pop, traffic.Config{Seed: tseed})
			return scenarioOf("pop", size, seed, pop, dem), nil
		},
	})
	mustRegister(Family{
		Name:        "waxman",
		Description: "Waxman geometric backbone, gravity-model traffic",
		MinSize:     3,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.Waxman(size, endpointCount(size), topoRng)
			dem := traffic.Gravity(pop, traffic.GravityConfig{Seed: tseed})
			return scenarioOf("waxman", size, seed, pop, dem), nil
		},
	})
	mustRegister(Family{
		Name:        "barabasi",
		Description: "Barabási–Albert power-law backbone, Zipf heavy-tailed traffic",
		MinSize:     3,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.BarabasiAlbert(size, endpointCount(size), topoRng)
			dem := traffic.Zipf(pop, traffic.ZipfConfig{Seed: tseed})
			return scenarioOf("barabasi", size, seed, pop, dem), nil
		},
	})
	mustRegister(Family{
		Name:        "metro",
		Description: "ring/ladder metro core, gravity-model traffic",
		MinSize:     4,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.RingLadder(size, endpointCount(size), topoRng)
			dem := traffic.Gravity(pop, traffic.GravityConfig{Seed: tseed})
			return scenarioOf("metro", size, seed, pop, dem), nil
		},
	})
	mustRegister(Family{
		Name:        "fattree",
		Description: "fat-tree access tiers, preferred-pair traffic",
		MinSize:     6,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.FatTree(size, endpointCount(size), topoRng)
			dem := traffic.Demands(pop, traffic.Config{Seed: tseed})
			return scenarioOf("fattree", size, seed, pop, dem), nil
		},
	})
	mustRegister(Family{
		Name:        "churn",
		Description: "two-level paper POP under traffic churn (drop/add/rescale mutation)",
		MinSize:     3,
		Generate: func(size int, seed int64) (*Scenario, error) {
			topoRng, tseed := subSeeds(seed)
			pop := topology.Scale(size, topoRng)
			dem := traffic.Demands(pop, traffic.Config{Seed: tseed})
			churned, err := traffic.Churn(pop, dem, traffic.ChurnConfig{Seed: tseed + 1})
			if err != nil {
				return nil, err
			}
			return scenarioOf("churn", size, seed, pop, traffic.Aggregate(churned)), nil
		},
	})
}
