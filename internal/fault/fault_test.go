package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collect drives n hits against a fresh registry with the given
// schedules installed on one point and returns the fire pattern.
func collect(seed int64, n int, schedules ...Schedule) []bool {
	r := NewRegistry(seed)
	for _, s := range schedules {
		r.Add("p", s)
	}
	fires := make([]bool, n)
	for i := range fires {
		fires[i] = r.hit("p").Fire
	}
	return fires
}

func TestEveryNthDeterministic(t *testing.T) {
	fires := collect(1, 10, Schedule{Every: 3, Err: errors.New("x")})
	want := []bool{false, false, true, false, false, true, false, false, true, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("hit %d: fire=%v, want %v (pattern %v)", i+1, fires[i], want[i], fires)
		}
	}
}

func TestAfterAndLimit(t *testing.T) {
	fires := collect(1, 10, Schedule{Every: 1, After: 3, Limit: 2})
	want := []bool{false, false, false, true, true, false, false, false, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("hit %d: fire=%v, want %v (pattern %v)", i+1, fires[i], want[i], fires)
		}
	}
}

func TestProbabilitySeededAndReproducible(t *testing.T) {
	const n = 2000
	a := collect(42, n, Schedule{P: 0.25})
	b := collect(42, n, Schedule{P: 0.25})
	count := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: same seed diverged", i+1)
		}
		if a[i] {
			count++
		}
	}
	// Loose statistical sanity: 0.25 ± plenty.
	if count < n/8 || count > n/2 {
		t.Fatalf("P=0.25 fired %d/%d times", count, n)
	}
	c := collect(43, n, Schedule{P: 0.25})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fire patterns")
	}
}

func TestPointStreamsIndependent(t *testing.T) {
	// The fire pattern of point "a" must not change when another point
	// is interleaved between its hits.
	solo := NewRegistry(7)
	solo.Add("a", Schedule{P: 0.5})
	var want []bool
	for i := 0; i < 100; i++ {
		want = append(want, solo.hit("a").Fire)
	}

	mixed := NewRegistry(7)
	mixed.Add("a", Schedule{P: 0.5})
	mixed.Add("b", Schedule{P: 0.5})
	for i := 0; i < 100; i++ {
		if got := mixed.hit("a").Fire; got != want[i] {
			t.Fatalf("hit %d: point a's stream shifted when point b was interleaved", i+1)
		}
		mixed.hit("b")
	}
}

func TestMultiScheduleMerge(t *testing.T) {
	r := NewRegistry(1)
	errA := errors.New("a")
	errB := errors.New("b")
	r.Add("p", Schedule{Every: 1, Err: errA, Delay: 10 * time.Millisecond})
	r.Add("p", Schedule{Every: 1, Err: errB, Delay: 5 * time.Millisecond, Corrupt: true})
	out := r.hit("p")
	if !out.Fire {
		t.Fatal("merged outcome did not fire")
	}
	if out.Err != errA {
		t.Fatalf("Err = %v, want first fired schedule's error %v", out.Err, errA)
	}
	if out.Delay != 15*time.Millisecond {
		t.Fatalf("Delay = %v, want summed 15ms", out.Delay)
	}
	if !out.Corrupt {
		t.Fatal("Corrupt did not OR across schedules")
	}
	if r.Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2 (both schedules)", r.Fired("p"))
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry(1)
	r.Set("p", Schedule{Every: 2})
	for i := 0; i < 6; i++ {
		r.hit("p")
	}
	r.hit("unscheduled")
	if got := r.Hits("p"); got != 6 {
		t.Fatalf("Hits(p) = %d, want 6", got)
	}
	if got := r.Fired("p"); got != 3 {
		t.Fatalf("Fired(p) = %d, want 3", got)
	}
	if got := r.Hits("unscheduled"); got != 1 {
		t.Fatalf("Hits(unscheduled) = %d, want 1", got)
	}
	if got := r.Hits("never"); got != 0 {
		t.Fatalf("Hits(never) = %d, want 0", got)
	}
	pts := r.Points()
	if len(pts) != 2 || pts[0] != "p" || pts[1] != "unscheduled" {
		t.Fatalf("Points() = %v, want sorted [p unscheduled]", pts)
	}
}

func TestSetReplacesAdd(t *testing.T) {
	r := NewRegistry(1)
	r.Add("p", Schedule{Every: 1, Corrupt: true})
	r.Set("p", Schedule{Every: 1, Panic: true})
	out := r.hit("p")
	if out.Corrupt {
		t.Fatal("Set did not replace the earlier Add schedule")
	}
	if !out.Panic {
		t.Fatal("Set schedule did not apply")
	}
}

func TestApplyOrder(t *testing.T) {
	errX := errors.New("x")
	if err := (Outcome{}).Apply(); err != nil {
		t.Fatalf("zero outcome Apply = %v, want nil", err)
	}
	if err := (Outcome{Fire: true, Err: errX}).Apply(); err != errX {
		t.Fatalf("Apply = %v, want %v", err, errX)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Apply with Panic did not panic")
			}
		}()
		_ = Outcome{Fire: true, Panic: true, Err: errX}.Apply()
	}()
}

func TestActivateHitDeactivate(t *testing.T) {
	defer Deactivate()
	if Enabled() {
		t.Fatal("Enabled before Activate")
	}
	if out := Hit("p"); out.Fire {
		t.Fatal("disabled Hit fired")
	}
	r := NewRegistry(1)
	r.Set("p", Schedule{Every: 1, Corrupt: true})
	Activate(r)
	if !Enabled() {
		t.Fatal("not Enabled after Activate")
	}
	if out := Hit("p"); !out.Fire || !out.Corrupt {
		t.Fatalf("armed Hit = %+v, want fire+corrupt", out)
	}
	Deactivate()
	if out := Hit("p"); out.Fire {
		t.Fatal("Hit fired after Deactivate")
	}
	if got := r.Hits("p"); got != 1 {
		t.Fatalf("Hits after deactivate = %d, want 1 (deactivated hits must not count)", got)
	}
}

// TestHitDisabledZeroAlloc pins the deployed-binary contract: with no
// registry armed, Hit allocates nothing.
func TestHitDisabledZeroAlloc(t *testing.T) {
	Deactivate()
	allocs := testing.AllocsPerRun(1000, func() {
		if out := Hit(PointEngineTask); out.Fire {
			t.Error("disabled Hit fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Hit allocates %.1f per call, want 0", allocs)
	}
}

func TestConcurrentHits(t *testing.T) {
	r := NewRegistry(1)
	r.Set("p", Schedule{Every: 2})
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.hit("p")
			}
		}()
	}
	wg.Wait()
	if got := r.Hits("p"); got != goroutines*per {
		t.Fatalf("Hits = %d, want %d", got, goroutines*per)
	}
	if got := r.Fired("p"); got != goroutines*per/2 {
		t.Fatalf("Fired = %d, want %d", got, goroutines*per/2)
	}
}
