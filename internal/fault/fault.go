// Package fault is the repro's seeded, deterministic fault-injection
// registry: the single sanctioned way to make the production stack
// fail on purpose. Production code declares named inject points by
// calling Hit at the place a real failure could occur (a cache read, a
// worker task, a basis factorization, a request handler); a chaos
// harness arms a Registry of per-point schedules before the run and
// reads the per-point counters after it. When no registry is armed —
// the only state a deployed binary is ever in — Hit is a single atomic
// pointer load returning the zero Outcome: no allocation, no branch on
// anything but nil, no schedule evaluation (pinned by
// TestHitDisabledZeroAlloc).
//
// Schedules are deterministic: probabilistic points draw from an
// explicit *rand.Rand derived from the registry seed and the point
// name (so the decision stream of one point does not depend on how
// often other points are hit), and Nth-call points fire on a pure
// counter. Given a fixed seed and a fixed per-point hit order, the
// fire pattern is reproducible — which is what lets the chaos suite
// pin invariants to named seeds in CI.
//
// The registry deliberately has no ambient configuration: no
// environment variables, no testing.Testing() probes, no build tags.
// Arming is an explicit Activate call, and the placevet faultgate
// analyzer enforces that the wired packages grow no ad-hoc failure
// branches beside it.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical inject-point names. The catalog lives here (not in the
// packages that hit the points) so a chaos schedule can be written
// against constants without importing the whole solve stack.
const (
	// PointCacheLoad fires once per persisted cache entry read at
	// startup. Err simulates an unreadable file (the entry is skipped);
	// Corrupt flips a byte of the file's content before verification,
	// so the self-certifying envelope must quarantine it.
	PointCacheLoad = "cache/load"
	// PointCacheStore fires once per cache entry written through to
	// disk. Err simulates a failed write (the entry stays memory-only);
	// Corrupt truncates the payload to half its length — the torn-write
	// image a crashed writer would leave if rename were not atomic.
	PointCacheStore = "cache/store"
	// PointEngineTask fires once per engine.Map task, before the task
	// function runs. Err fails the task (the batch aborts with the
	// lowest failing index, exactly like a real task error), Delay
	// stalls the worker, Panic dies on the worker goroutine (re-raised
	// on the caller as *engine.TaskPanic).
	PointEngineTask = "engine/map/task"
	// PointLPFactor fires once per warm-started simplex solve. A fire
	// simulates a numerical factorization failure: the warm basis is
	// discarded and the solve takes the existing cold-start fallback,
	// which by construction returns the same answer.
	PointLPFactor = "lp/factor"
	// PointHandler fires once per admitted service request, before the
	// solve. Delay simulates a slow handler, Panic a handler crash
	// (recovered by the service middleware into a 500), Err a handler
	// failure mapped to a 500.
	PointHandler = "service/handler"
)

// Outcome is what one Hit decided. The zero value (Fire == false)
// means "proceed normally"; call sites only interpret the other fields
// when Fire is set. Corrupt has no universal meaning — each point
// documents how its call site interprets it.
type Outcome struct {
	// Fire reports whether any schedule of the point fired.
	Fire bool
	// Err is the error to inject, nil when the firing schedule carries
	// none.
	Err error
	// Delay is how long the call site should stall before proceeding.
	Delay time.Duration
	// Corrupt asks the call site to corrupt its payload.
	Corrupt bool
	// Panic asks the call site to panic.
	Panic bool
}

// Apply performs the generic parts of an outcome in canonical order:
// sleep Delay, then panic if Panic, then return Err. Corruption is
// left to the call site. A zero outcome is a no-op returning nil.
func (o Outcome) Apply() error {
	if !o.Fire {
		return nil
	}
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic {
		panic(fmt.Sprintf("fault: injected panic (%v)", o.Err))
	}
	return o.Err
}

// Schedule describes when one inject point fires and what it injects.
// Exactly one trigger is consulted: Every (deterministic Nth-call) when
// positive, else P (per-hit probability). A point may carry several
// schedules (Registry.Add); each decides independently per hit and the
// outcomes merge (delays sum, the first fired error wins, Corrupt and
// Panic OR).
type Schedule struct {
	// P is the per-hit fire probability in [0,1], drawn from the
	// point's seeded generator. Ignored when Every > 0.
	P float64
	// Every fires deterministically on every Every-th eligible hit
	// (the After+Every-th, After+2·Every-th, … overall hit).
	Every int
	// After skips the first After hits of the point entirely.
	After int
	// Limit caps the total number of fires (0 = unlimited).
	Limit int

	// Err, Delay, Corrupt and Panic are the injected payload; see
	// Outcome.
	Err     error
	Delay   time.Duration
	Corrupt bool
	Panic   bool
}

// point is the armed state of one inject point.
type point struct {
	schedules []Schedule
	fired     []int64 // per-schedule fire counts
	rng       *rand.Rand
	hits      int64
}

// Registry is an armed set of inject-point schedules plus the hit and
// fire counters of a run. It is safe for concurrent use.
type Registry struct {
	seed int64

	mu     sync.Mutex
	points map[string]*point
}

// NewRegistry builds an empty registry whose probabilistic decisions
// derive from seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, points: make(map[string]*point)}
}

// Seed returns the registry's seed.
func (r *Registry) Seed() int64 { return r.seed }

// Set replaces the schedules of the named point with s.
func (r *Registry) Set(name string, s Schedule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pointLocked(name)
	p.schedules = []Schedule{s}
	p.fired = make([]int64, 1)
}

// Add appends one more schedule to the named point; schedules decide
// independently per hit and their outcomes merge.
func (r *Registry) Add(name string, s Schedule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pointLocked(name)
	p.schedules = append(p.schedules, s)
	p.fired = append(p.fired, 0)
}

// pointLocked returns (creating if needed) the named point. Each point
// gets its own generator derived from the registry seed and the point
// name, so one point's decision stream does not shift when another
// point's hit count changes.
func (r *Registry) pointLocked(name string) *point {
	p, ok := r.points[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		p = &point{rng: rand.New(rand.NewSource(r.seed ^ int64(h.Sum64())))}
		r.points[name] = p
	}
	return p
}

// Hits returns how often the named point was hit (scheduled or not).
func (r *Registry) Hits(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.hits
	}
	return 0
}

// Fired returns how often the named point fired (across all its
// schedules).
func (r *Registry) Fired(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		return 0
	}
	var n int64
	for _, f := range p.fired {
		n += f
	}
	return n
}

// FiredAt returns how often schedule i of the named point fired (0
// when the point or the index does not exist), letting a harness
// attribute effects — panics recovered, writes torn — to the one
// schedule that causes them.
func (r *Registry) FiredAt(name string, i int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok || i < 0 || i >= len(p.fired) {
		return 0
	}
	return p.fired[i]
}

// Points returns the names of every point the registry has seen
// (scheduled or merely hit), sorted.
func (r *Registry) Points() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for n := range r.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hit records one hit and evaluates the point's schedules.
func (r *Registry) hit(name string) Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pointLocked(name)
	p.hits++
	var out Outcome
	for i, s := range p.schedules {
		fire := false
		switch {
		case p.hits <= int64(s.After):
		case s.Limit > 0 && p.fired[i] >= int64(s.Limit):
		case s.Every > 0:
			fire = (p.hits-int64(s.After))%int64(s.Every) == 0
		case s.P > 0:
			fire = p.rng.Float64() < s.P
		}
		if !fire {
			continue
		}
		p.fired[i]++
		out.Fire = true
		out.Delay += s.Delay
		if out.Err == nil {
			out.Err = s.Err
		}
		out.Corrupt = out.Corrupt || s.Corrupt
		out.Panic = out.Panic || s.Panic
	}
	return out
}

// active is the armed registry; nil (the deployed state) makes every
// Hit a no-op.
var active atomic.Pointer[Registry]

// Activate arms reg: subsequent Hit calls anywhere in the process
// evaluate its schedules. Passing nil disarms (same as Deactivate).
// Chaos harnesses must disarm before their process outlives the run.
func Activate(reg *Registry) { active.Store(reg) }

// Deactivate disarms fault injection; Hit returns to its zero-cost
// path.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a registry is armed.
func Enabled() bool { return active.Load() != nil }

// Hit declares an inject point: production code calls it at the place
// a real failure could occur and interprets the Outcome. With no
// registry armed it returns the zero Outcome after one atomic load.
func Hit(name string) Outcome {
	reg := active.Load()
	if reg == nil {
		return Outcome{}
	}
	return reg.hit(name)
}
